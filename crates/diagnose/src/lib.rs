//! # nqpv-diagnose
//!
//! Counterexample extraction & replay: turns a REJECTED verdict into a
//! **witness** — evidence a human (or a script) can check independently
//! of the verifier.
//!
//! The paper's partial-correctness judgement fails exactly when the
//! Löwner comparison `Θ ⊑_inf wp.S.Ψ` fails, and the violating
//! eigenvector of the gap operator *is* a concrete input state refuting
//! the Hoare triple. This crate surfaces that evidence end-to-end:
//!
//! 1. **Witness state** — a normalised `ρ = |v⟩⟨v|` extracted from the
//!    most-negative eigenvector of `wp − Θ` (via
//!    [`nqpv_solver::lowner_le_witnessed`]), falling back to the solver's
//!    own game witness for set-valued sides; the candidate with the
//!    largest operator-level gap wins.
//! 2. **Scheduler trace** — the demonic resolution of every `□`: which
//!    branch the adversary picks, per dynamically encountered choice
//!    (see [`demonic_schedule`]).
//! 3. **Replay confirmation** — the witness is pushed through
//!    [`nqpv_semantics::exec_scheduled`] under the resolved scheduler and
//!    the gap `Exp(ρ ⊨ Θ) − (Exp(σ ⊨ Ψ) + slack)` is re-measured
//!    numerically, independent of the wp pipeline that produced the
//!    verdict.
//! 4. **Trajectory** — the per-statement expectation of the annotated
//!    intermediate conditions along the replay, showing *where* the
//!    expectation first drops below the requirement.
//!
//! The result is a structured [`Counterexample`] with human
//! ([`Counterexample::human`]) and JSON ([`Counterexample::to_json`])
//! renderings; [`explain_source`] applies the whole pipeline to every
//! proof of an `.nqpv` source file — the engine's `--explain` mode, the
//! daemon's `counterexamples` verdict payload, and the `nqpv explain`
//! subcommand are thin wrappers over it.
//!
//! # Example
//!
//! ```
//! use nqpv_core::VcOptions;
//! use nqpv_diagnose::explain_source;
//!
//! // {P1} H {P0} is false: wlp.H.P0 = |+⟩⟨+| and P1 ⋢ |+⟩⟨+|.
//! let report = explain_source(
//!     "def pf := proof [q] : { P1[q] }; [q] *= H; { P0[q] } end",
//!     std::path::Path::new("."),
//!     VcOptions::default(),
//! )
//! .unwrap();
//! let cex = report[0].counterexample.as_ref().expect("rejected");
//! assert!(cex.confirmed && cex.gap > 0.4);
//! ```

mod render;
mod search;

pub use search::{demonic_schedule, ScriptSched, SearchOutcome};

use nqpv_core::{
    backward, Annotated, AnnotatedNode, Assertion, FailedObligation, PredicateRegistry, VcOptions,
    VerifyStatus,
};
use nqpv_lang::{parse_source, pretty_assertion, pretty_stmt, Command, Decl, ProofTerm, Stmt};
use nqpv_linalg::{eigh, CMat, Complex};
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_semantics::{exec_scheduled, ExecOptions};
use std::collections::HashMap;
use std::path::Path;

/// Replay gaps below this threshold are not reported as confirmed
/// counterexamples (the acceptance bar of the subsystem: a reported
/// witness must violate the triple by at least this much under forward
/// replay).
pub const CONFIRM_EPS: f64 = 1e-6;

/// Forward-execution budget for replay and scheduler search.
const REPLAY_FUEL: usize = 64;

/// Cap on forward executions during the scheduler search (2¹¹ runs cover
/// every script of up to ~10 dynamic choices exhaustively).
const SEARCH_BUDGET: usize = 2048;

/// The refuting input state.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The witness density operator (trace 1).
    pub rho: CMat,
    /// State-vector amplitudes when the witness is (numerically) pure,
    /// global phase fixed so the largest-magnitude amplitude is real
    /// positive.
    pub amplitudes: Option<Vec<Complex>>,
    /// `tr(ρ²)` — 1 for pure witnesses.
    pub purity: f64,
}

impl Witness {
    fn from_rho(rho: CMat) -> Witness {
        let purity = rho.mul(&rho).trace_re();
        let amplitudes = eigh(&rho).ok().and_then(|e| {
            let k = e.values.len() - 1;
            if e.values[k] < 1.0 - 1e-9 {
                return None; // mixed
            }
            let v = e.vectors.col(k);
            // Fix the global phase: rotate the largest-|·| amplitude onto
            // the positive real axis.
            let lead = v
                .as_slice()
                .iter()
                .max_by(|a, b| a.abs().total_cmp(&b.abs()))
                .copied()
                .unwrap_or(Complex::ZERO);
            let phase = if lead.abs() > 1e-12 {
                lead.scale(1.0 / lead.abs()).conj()
            } else {
                Complex::ONE
            };
            Some(v.as_slice().iter().map(|z| *z * phase).collect())
        });
        Witness {
            rho,
            amplitudes,
            purity,
        }
    }
}

/// One resolved nondeterministic choice of the demonic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStep {
    /// Dynamic choice index (0-based, execution order).
    pub index: usize,
    /// `true` = the right operand of `□` (`#` in tool syntax).
    pub right: bool,
}

/// One point of the per-statement expectation trajectory.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    /// One-line rendering of the statement just executed (`(input)` for
    /// the initial point).
    pub statement: String,
    /// `Exp(ρᵢ ⊨ Aᵢ)` — the expectation of the annotated condition that
    /// should hold *at this point* for the proof to go through.
    pub expectation: f64,
    /// `tr ρᵢ` — remaining (non-aborted, loop-exited) mass.
    pub trace: f64,
}

/// A complete, replay-confirmed refutation of one Hoare triple.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The proof's `def` name.
    pub proof: String,
    /// Human description of the failed obligation.
    pub obligation: String,
    /// Index of the violated element of the computed VC set.
    pub vc_index: usize,
    /// The refuting input state.
    pub witness: Witness,
    /// The demon's branch choices, in execution order.
    pub schedule: Vec<ScheduleStep>,
    /// Per-statement expectation trajectory under the resolved scheduler.
    pub trajectory: Vec<TrajectoryPoint>,
    /// `Exp(ρ ⊨ Θ)` — what the precondition promises on the witness.
    pub pre_expectation: f64,
    /// `Exp(σ ⊨ Ψ) + slack` — what the program delivers under the
    /// resolved scheduler (slack = lost trace mass in partial mode).
    pub post_expectation: f64,
    /// The replay gap `pre_expectation − post_expectation` (≥
    /// [`CONFIRM_EPS`] when `confirmed`).
    pub gap: f64,
    /// The operator-level gap `Exp(ρ ⊨ Θ) − tr(VC[vc_index]·ρ)` certified
    /// by the solver on the same witness.
    pub solver_margin: f64,
    /// `true` when the forward replay confirms the violation
    /// (`gap ≥ CONFIRM_EPS`; for total-mode programs with loops the bar
    /// additionally absorbs any fuel-truncated loop mass, so a gap that
    /// could be an artifact of bounded replay is never confirmed).
    pub confirmed: bool,
    /// `true` when the scheduler search enumerated every script.
    pub exhaustive: bool,
}

/// Per-proof diagnosis of a source file.
#[derive(Debug, Clone)]
pub struct ProofDiagnosis {
    /// The proof's `def` name.
    pub name: String,
    /// Whether the correctness formula was established.
    pub verified: bool,
    /// The extracted counterexample for rejected proofs (`None` for
    /// verified proofs — and for `Unresolved` boundary verdicts, which
    /// carry no violation to witness).
    pub counterexample: Option<Counterexample>,
}

/// Runs the whole diagnosis pipeline over an `.nqpv` source: verifies
/// every proof exactly like a `Session` would, and extracts a
/// counterexample for each rejected one.
///
/// # Errors
///
/// A rendered message for structural failures (parse errors, unknown
/// operators, missing `.npy` files, invalid invariants) — the same
/// failures a `Session` run reports; a *rejected* proof is a diagnosis,
/// not an error.
pub fn explain_source(
    source: &str,
    base_dir: &Path,
    opts: VcOptions,
) -> Result<Vec<ProofDiagnosis>, String> {
    let file = parse_source(source).map_err(|e| e.to_string())?;
    let mut lib = OperatorLibrary::with_builtins();
    let mut registry = PredicateRegistry::new();
    let mut out = Vec::new();
    for cmd in &file.commands {
        match cmd {
            Command::Def(Decl::LoadOperator { name, path }) => {
                let m = nqpv_linalg::read_matrix(base_dir.join(path))
                    .map_err(|e| format!("loading '{path}': {e}"))?;
                lib.insert_auto(name, m).map_err(|e| e.to_string())?;
            }
            Command::Def(Decl::Proof { name, term }) => {
                let outcome =
                    nqpv_core::verify_proof_term(term, &lib, opts, &HashMap::new(), &mut registry)
                        .map_err(|e| format!("verifying proof '{name}':\n{e}"))?;
                let diagnosis = match &outcome.status {
                    VerifyStatus::Verified => ProofDiagnosis {
                        name: name.clone(),
                        verified: true,
                        counterexample: None,
                    },
                    VerifyStatus::Unresolved { .. } => ProofDiagnosis {
                        name: name.clone(),
                        verified: false,
                        counterexample: None,
                    },
                    VerifyStatus::PreconditionViolated { violation, .. } => ProofDiagnosis {
                        name: name.clone(),
                        verified: false,
                        counterexample: Some(explain_term(name, term, &lib, opts, violation)?),
                    },
                };
                out.push(diagnosis);
            }
            Command::Show(_) => {}
        }
    }
    Ok(out)
}

/// Extracts a counterexample for one rejected proof term from the
/// verifier's structured violation record.
///
/// # Errors
///
/// A rendered message when the term cannot be re-elaborated (cannot
/// happen for terms that just verified as rejected — defensive).
pub fn explain_term(
    name: &str,
    term: &ProofTerm,
    lib: &OperatorLibrary,
    opts: VcOptions,
    violation: &FailedObligation,
) -> Result<Counterexample, String> {
    let reg = Register::new(&term.qubits).map_err(|e| e.to_string())?;
    let post = Assertion::from_expr_with(&term.post, lib, &reg, opts.factor_assertions)
        .map_err(|e| e.to_string())?;
    let pre_expr = term
        .pre
        .as_ref()
        .ok_or("rejected proof carries no precondition")?;
    let pre = Assertion::from_expr_with(pre_expr, lib, &reg, opts.factor_assertions)
        .map_err(|e| e.to_string())?;
    // Re-run the (deterministic) backward pass for the annotated tree —
    // the per-statement conditions behind the trajectory.
    let ann =
        backward(&term.body, &post, lib, &reg, opts, &HashMap::new()).map_err(|e| e.to_string())?;
    let vc = &ann.pre;
    let vc_index = violation.vc_index.min(vc.len().saturating_sub(1));
    let n_star = &vc.ops()[vc_index];

    // Candidate witnesses: the solver's game witness, its purification,
    // and the most-negative eigenvector of `VC[vc_index] − M` for every
    // `M ∈ Θ` (the paper's gap operator; every M must individually fail
    // against the violated element, so each yields an eigen-witness).
    let mut candidates: Vec<CMat> = Vec::new();
    let raw = &violation.witness;
    let mass = raw.trace_re();
    if mass > 1e-12 {
        candidates.push(raw.scale_re(1.0 / mass));
    }
    if let Some(pure) = purify(raw) {
        candidates.push(pure);
    }
    for m in pre.ops() {
        let w = nqpv_solver::lowner_le_witnessed(m.dense(), n_star.dense(), opts.lowner.eps);
        if let Some(ew) = w.witness {
            candidates.push(ew.vector.projector());
        }
    }
    // Score candidates by the operator-level gap at the state; prefer
    // pure witnesses on ties (they render as amplitudes).
    let margin_at = |rho: &CMat| pre.expectation(rho) - n_star.expectation(rho);
    let mut best: Option<(CMat, f64, bool)> = None;
    for cand in candidates {
        let margin = margin_at(&cand);
        let purity = cand.mul(&cand).trace_re();
        let is_pure = purity >= 1.0 - 1e-9;
        let better = match &best {
            None => true,
            Some((_, bm, bpure)) => {
                margin > bm + 1e-12 || (margin >= bm - 1e-12 && is_pure && !bpure)
            }
        };
        if better {
            best = Some((cand, margin, is_pure));
        }
    }
    let (rho, solver_margin, _) = best.ok_or("no usable witness candidate")?;

    // Resolve the demon and replay.
    let exec = ExecOptions {
        fuel: REPLAY_FUEL,
        ..ExecOptions::default()
    };
    let search = demonic_schedule(
        &term.body,
        &rho,
        &post,
        lib,
        &reg,
        opts.mode,
        exec,
        SEARCH_BUDGET,
    )
    .map_err(|e| e.to_string())?;
    let trajectory = trajectory(&term.body, &ann, &rho, &post, lib, &reg, &search.bits, exec)
        .map_err(|e| e.to_string())?;

    let pre_expectation = pre.expectation(&rho);
    let post_expectation = search.score;
    let gap = pre_expectation - post_expectation;
    // Honesty guard for total-mode loops: `exec_scheduled` drops mass
    // still circulating when the fuel runs out, which in total mode
    // *under*-approximates the delivered expectation (in partial mode the
    // liberal slack already credits every lost unit). Since predicates
    // are ≤ I, the true delivered value exceeds the replayed one by at
    // most the lost mass — so only confirm when the gap survives
    // crediting all of it back.
    let confirm_bar = if opts.mode == nqpv_core::Mode::Total && term.body.has_loop() {
        let lost = (rho.trace_re() - search.sigma.trace_re()).max(0.0);
        CONFIRM_EPS + lost
    } else {
        CONFIRM_EPS
    };
    Ok(Counterexample {
        proof: name.to_string(),
        obligation: format!(
            "final comparison {} ⊑_inf wp (element #{vc_index} of the computed VC violated)",
            pretty_assertion(pre_expr),
        ),
        vc_index,
        witness: Witness::from_rho(rho),
        schedule: search
            .bits
            .iter()
            .enumerate()
            .map(|(index, &right)| ScheduleStep { index, right })
            .collect(),
        trajectory,
        pre_expectation,
        post_expectation,
        gap,
        solver_margin,
        confirmed: gap >= confirm_bar,
        exhaustive: search.exhaustive,
    })
}

/// The top eigenvector of a density operator as a pure density matrix
/// (`None` on eigensolver failure or zero mass).
fn purify(rho: &CMat) -> Option<CMat> {
    let e = eigh(rho).ok()?;
    let k = e.values.len() - 1;
    if e.values[k] <= 1e-12 {
        return None;
    }
    Some(e.vectors.col(k).normalized().projector())
}

/// Replays the witness statement-by-statement under the resolved script,
/// recording the expectation of each annotated intermediate condition.
#[allow(clippy::too_many_arguments)]
fn trajectory(
    body: &Stmt,
    ann: &Annotated,
    rho: &CMat,
    post: &Assertion,
    lib: &OperatorLibrary,
    reg: &Register,
    bits: &[bool],
    exec: ExecOptions,
) -> Result<Vec<TrajectoryPoint>, nqpv_semantics::SemanticsError> {
    // Align top-level statements with their annotated conditions.
    let (stmts, conds): (Vec<&Stmt>, Vec<&Assertion>) = match (body, &ann.node) {
        (Stmt::Seq(items), AnnotatedNode::Seq(anns)) if items.len() == anns.len() => {
            let stmts: Vec<&Stmt> = items.iter().collect();
            // Condition *after* statement i = pre of statement i+1; after
            // the last statement, the postcondition.
            let mut conds: Vec<&Assertion> = anns.iter().skip(1).map(|a| &a.pre).collect();
            conds.push(post);
            (stmts, conds)
        }
        _ => (vec![body], vec![post]),
    };
    let mut sched = ScriptSched::new(bits.to_vec());
    let mut state = rho.clone();
    let mut out = vec![TrajectoryPoint {
        statement: "(input)".to_string(),
        expectation: ann.pre.expectation(&state),
        trace: state.trace_re(),
    }];
    for (stmt, cond) in stmts.iter().zip(conds) {
        state = exec_scheduled(stmt, &state, lib, reg, &mut sched, exec)?;
        out.push(TrajectoryPoint {
            statement: one_line(&pretty_stmt(stmt)),
            expectation: cond.expectation(&state),
            trace: state.trace_re(),
        });
    }
    Ok(out)
}

/// Collapses a pretty-printed statement to one (truncated) line.
fn one_line(text: &str) -> String {
    let mut out = String::with_capacity(text.len().min(64));
    let mut last_space = true;
    for c in text.chars() {
        let c = if c.is_whitespace() { ' ' } else { c };
        if c == ' ' && last_space {
            continue;
        }
        last_space = c == ' ';
        out.push(c);
        if out.len() >= 60 {
            out.push('…');
            break;
        }
    }
    out.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_quantum::ket;

    const REJECTED: &str = "def pf := proof [q] : { P1[q] }; [q] *= H; { P0[q] } end";
    const NDET_REJECTED: &str =
        "def pf := proof [q] : { P0[q] }; ( skip # [q] *= X ); { P0[q] } end";
    const VERIFIED: &str = "def pf := proof [q] : { Pp[q] }; [q] *= H; { P0[q] } end";

    #[test]
    fn rejected_deterministic_triple_yields_a_confirmed_witness() {
        let report =
            explain_source(REJECTED, Path::new("."), VcOptions::default()).expect("runs clean");
        assert_eq!(report.len(), 1);
        assert!(!report[0].verified);
        let cex = report[0].counterexample.as_ref().expect("rejected");
        assert!(cex.confirmed, "{cex:?}");
        assert!(cex.exhaustive);
        assert!(cex.schedule.is_empty(), "no □ in the program");
        // wlp.H.P0 = |+⟩⟨+|; the strongest witness is the eigenvector of
        // |+⟩⟨+| − P1 with eigenvalue −1/√2: gap 1/√2 ≈ 0.7071.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((cex.gap - s).abs() < 1e-6, "gap {}", cex.gap);
        assert!((cex.solver_margin - s).abs() < 1e-6);
        assert!((cex.gap - cex.solver_margin).abs() < 1e-6);
        // Replay consistency: gap = pre − post expectations.
        assert!((cex.gap - (cex.pre_expectation - cex.post_expectation)).abs() < 1e-12);
        // The witness is pure and renders amplitudes.
        assert!(cex.witness.purity > 1.0 - 1e-9);
        assert!(cex.witness.amplitudes.is_some());
        // Trajectory: input point + one per top-level body statement
        // (the pre/post braces are annotations, not statements).
        assert_eq!(cex.trajectory.len(), 2);
        assert!((cex.trajectory[0].trace - 1.0).abs() < 1e-9);
        // The trajectory endpoint is the delivered post expectation
        // (no mass is lost, so no liberal slack intervenes).
        let last = cex.trajectory.last().unwrap();
        assert!(
            (last.expectation - cex.post_expectation).abs() < 1e-9,
            "{last:?}"
        );
    }

    #[test]
    fn demonic_choice_yields_the_violating_branch_trace() {
        let report = explain_source(NDET_REJECTED, Path::new("."), VcOptions::default()).unwrap();
        let cex = report[0].counterexample.as_ref().expect("rejected");
        assert!(cex.confirmed);
        // The demon must take the X branch (right operand of `#`).
        assert_eq!(cex.schedule.len(), 1);
        assert!(cex.schedule[0].right, "{:?}", cex.schedule);
        // Witness |0⟩: P0 promises 1, X drives it to 0 — gap 1.
        assert!((cex.gap - 1.0).abs() < 1e-6, "gap {}", cex.gap);
        assert!((cex.solver_margin - 1.0).abs() < 1e-6);
        let amp = cex.witness.amplitudes.as_ref().unwrap();
        assert!((amp[0].re - 1.0).abs() < 1e-6 && amp[1].abs() < 1e-6);
        // The trajectory shows the expectation collapsing at the choice.
        let last = cex.trajectory.last().unwrap();
        assert!(last.expectation < 1e-9, "{:?}", cex.trajectory);
    }

    #[test]
    fn verified_programs_yield_no_counterexample() {
        let report = explain_source(VERIFIED, Path::new("."), VcOptions::default()).unwrap();
        assert!(report[0].verified);
        assert!(report[0].counterexample.is_none());
    }

    #[test]
    fn structural_errors_are_errors_not_diagnoses() {
        assert!(explain_source(
            "def pf := proof [q] : { I[q] }; [q] *= NOPE; { I[q] } end",
            Path::new("."),
            VcOptions::default()
        )
        .is_err());
        assert!(explain_source("not nqpv at all", Path::new("."), VcOptions::default()).is_err());
    }

    #[test]
    fn witness_replay_is_independent_of_the_wp_pipeline() {
        // Recompute the rejected.nqpv gap by hand from the reported
        // witness: gap = tr(P1 ρ) − tr(P0 · H ρ H).
        let report = explain_source(REJECTED, Path::new("."), VcOptions::default()).unwrap();
        let cex = report[0].counterexample.as_ref().unwrap();
        let rho = &cex.witness.rho;
        let h = nqpv_quantum::gates::h();
        let evolved = h.conjugate(rho);
        let by_hand = ket("1").projector().trace_product(rho).re
            - ket("0").projector().trace_product(&evolved).re;
        assert!((by_hand - cex.gap).abs() < 1e-9, "{by_hand} vs {}", cex.gap);
    }
}
