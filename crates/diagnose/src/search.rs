//! Demonic scheduler search: resolve the nondeterministic choices of a
//! program into the explicit scheduler that *realises* a violation.
//!
//! The demonic reading quantifies over schedulers `η`: the triple fails
//! when some `η` drives the liberal satisfaction
//! `Exp(σ_η ⊨ Ψ) + (tr ρ − tr σ_η)` below `Exp(ρ ⊨ Θ)`. The search below
//! enumerates scheduler scripts (one bit per dynamically encountered `□`,
//! in execution order) through [`nqpv_semantics::exec_scheduled`] and
//! returns the minimising script — for loop-free programs this is exact;
//! loops are fuel-bounded and the search is capped by a run budget, in
//! which case the best script found so far is returned and flagged
//! non-exhaustive.

use nqpv_core::{Assertion, Mode};
use nqpv_linalg::CMat;
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_semantics::{exec_scheduled, Choice, ExecOptions, Scheduler, SemanticsError};

/// A scheduler that replays a fixed script in **arrival order** (one bit
/// per `decide` call, `true` = right branch), padding with left choices
/// once the script is exhausted. Unlike [`nqpv_semantics::FromBits`] it
/// ignores the global choice index and counts consumption itself, so one
/// script can be threaded across several `exec_scheduled` calls (each of
/// which restarts the index at 0) — exactly what statement-by-statement
/// trajectory replay needs.
#[derive(Debug, Clone)]
pub struct ScriptSched {
    bits: Vec<bool>,
    /// Choices consumed so far (across every call this scheduler served).
    pub used: usize,
}

impl ScriptSched {
    /// A scheduler replaying `bits` (then left-padding).
    pub fn new(bits: Vec<bool>) -> Self {
        ScriptSched { bits, used: 0 }
    }
}

impl Scheduler for ScriptSched {
    fn decide(&mut self, _k: usize) -> Choice {
        let bit = self.bits.get(self.used).copied().unwrap_or(false);
        self.used += 1;
        if bit {
            Choice::Right
        } else {
            Choice::Left
        }
    }
}

/// Result of a demonic scheduler search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The minimising script, truncated to the choices actually consumed.
    pub bits: Vec<bool>,
    /// The minimised liberal satisfaction
    /// `Exp(σ ⊨ Ψ) + slack` (slack = lost trace mass in partial mode).
    pub score: f64,
    /// The output state under the minimising script.
    pub sigma: CMat,
    /// `true` when every scheduler script was enumerated within the
    /// budget (always the case for loop-free programs with few `□`s).
    pub exhaustive: bool,
    /// Forward executions performed.
    pub runs: usize,
}

/// The liberal slack of partial correctness: trace mass lost to `abort`
/// or fuel-exhausted loops counts as satisfied (`wlp`'s `I − E†(I)` term).
fn slack(mode: Mode, rho: &CMat, sigma: &CMat) -> f64 {
    match mode {
        Mode::Partial => (rho.trace_re() - sigma.trace_re()).max(0.0),
        Mode::Total => 0.0,
    }
}

/// Finds the scheduler minimising `Exp(σ ⊨ post) + slack` from input
/// `rho`, by depth-first enumeration of scheduler scripts. Every run's
/// score is recorded (a prefix run pads with left choices, so it realises
/// a complete schedule too), hence a best script exists even when the
/// `budget` truncates the search.
///
/// # Errors
///
/// Propagates [`SemanticsError`] from forward execution (unknown
/// operators, arity mismatches) — callers run on already-verified
/// programs, so this is defensive.
#[allow(clippy::too_many_arguments)]
pub fn demonic_schedule(
    stmt: &nqpv_lang::Stmt,
    rho: &CMat,
    post: &Assertion,
    lib: &OperatorLibrary,
    reg: &Register,
    mode: Mode,
    exec: ExecOptions,
    budget: usize,
) -> Result<SearchOutcome, SemanticsError> {
    let mut best: Option<(f64, Vec<bool>, CMat)> = None;
    let mut exhaustive = true;
    let mut runs = 0usize;
    let mut stack: Vec<Vec<bool>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if runs >= budget.max(1) {
            exhaustive = false;
            break;
        }
        runs += 1;
        let mut sched = ScriptSched::new(prefix.clone());
        let sigma = exec_scheduled(stmt, rho, lib, reg, &mut sched, exec)?;
        let score = post.expectation(&sigma) + slack(mode, rho, &sigma);
        let used = sched.used;
        // The run realised `prefix` left-padded (or truncated) to the
        // `used` choices it actually consumed.
        let mut realised = prefix.clone();
        realised.resize(used, false);
        if best.as_ref().is_none_or(|(b, _, _)| score < *b) {
            best = Some((score, realised, sigma));
        }
        if used > prefix.len() {
            // Unexplored choices remain: branch on the next position.
            // Right pushed first so the left extension is explored first
            // (depth-first, leftmost) — matching the padded run above.
            let mut right = prefix.clone();
            right.push(true);
            stack.push(right);
            let mut left = prefix;
            left.push(false);
            stack.push(left);
        }
    }
    let (score, bits, sigma) = best.expect("at least one schedule was executed");
    Ok(SearchOutcome {
        bits,
        score,
        sigma,
        exhaustive,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::parse_stmt;
    use nqpv_quantum::ket;

    fn setup() -> (OperatorLibrary, Register) {
        (
            OperatorLibrary::with_builtins(),
            Register::new(&["q"]).unwrap(),
        )
    }

    #[test]
    fn script_sched_replays_in_arrival_order_across_calls() {
        let (lib, reg) = setup();
        let s = parse_stmt("( skip # [q] *= X )").unwrap();
        let rho = ket("0").projector();
        let mut sched = ScriptSched::new(vec![true, false]);
        // First call consumes bit 0 (Right → X applied).
        let out1 =
            exec_scheduled(&s, &rho, &lib, &reg, &mut sched, ExecOptions::default()).unwrap();
        assert!(out1.approx_eq(&ket("1").projector(), 1e-12));
        assert_eq!(sched.used, 1);
        // Second call continues with bit 1 (Left → skip).
        let out2 =
            exec_scheduled(&s, &out1, &lib, &reg, &mut sched, ExecOptions::default()).unwrap();
        assert!(out2.approx_eq(&ket("1").projector(), 1e-12));
        assert_eq!(sched.used, 2);
        // Exhausted script pads with Left.
        let out3 =
            exec_scheduled(&s, &out2, &lib, &reg, &mut sched, ExecOptions::default()).unwrap();
        assert!(out3.approx_eq(&ket("1").projector(), 1e-12));
    }

    #[test]
    fn search_finds_the_violating_branch() {
        // (skip # X) from |0⟩ against post P0: the demon flips — score 0,
        // schedule [Right].
        let (lib, reg) = setup();
        let s = parse_stmt("( skip # [q] *= X )").unwrap();
        let rho = ket("0").projector();
        let post = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
        let out = demonic_schedule(
            &s,
            &rho,
            &post,
            &lib,
            &reg,
            Mode::Partial,
            ExecOptions::default(),
            256,
        )
        .unwrap();
        assert!(out.exhaustive);
        assert!(out.score.abs() < 1e-12, "score {}", out.score);
        assert_eq!(out.bits, vec![true]);
        // Against post P1 the demon keeps the state: score 0, [Left].
        let post1 = Assertion::from_ops(2, vec![ket("1").projector()]).unwrap();
        let out1 = demonic_schedule(
            &s,
            &rho,
            &post1,
            &lib,
            &reg,
            Mode::Partial,
            ExecOptions::default(),
            256,
        )
        .unwrap();
        assert!(out1.score.abs() < 1e-12);
        assert_eq!(out1.bits, vec![false]);
    }

    #[test]
    fn nested_choices_enumerate_fully() {
        // Two sequential choices: demon must pick Right then Right to
        // reach |0⟩ again (X;X). Post P1 forces exactly one flip.
        let (lib, reg) = setup();
        let s = parse_stmt("( skip # [q] *= X ); ( skip # [q] *= X )").unwrap();
        let rho = ket("0").projector();
        let post = Assertion::from_ops(2, vec![ket("1").projector()]).unwrap();
        let out = demonic_schedule(
            &s,
            &rho,
            &post,
            &lib,
            &reg,
            Mode::Partial,
            ExecOptions::default(),
            256,
        )
        .unwrap();
        assert!(out.exhaustive);
        assert!(out.score.abs() < 1e-12);
        // Either [L, L] or [R, R] leaves the state at |0⟩ (score 0).
        assert_eq!(out.bits.len(), 2);
        assert_eq!(out.bits[0], out.bits[1]);
    }

    #[test]
    fn partial_mode_credits_lost_mass() {
        // if M01 then abort else skip from |+⟩: half the mass aborts. In
        // partial mode the lost mass counts as satisfied, so the score
        // against Zero is tr-slack = 1/2; in total mode it is 0.
        let (lib, reg) = setup();
        let s = parse_stmt("if M01[q] then abort else skip end").unwrap();
        let rho = ket("+").projector();
        let post = Assertion::zero(2);
        let partial = demonic_schedule(
            &s,
            &rho,
            &post,
            &lib,
            &reg,
            Mode::Partial,
            ExecOptions::default(),
            64,
        )
        .unwrap();
        assert!((partial.score - 0.5).abs() < 1e-10, "{}", partial.score);
        let total = demonic_schedule(
            &s,
            &rho,
            &post,
            &lib,
            &reg,
            Mode::Total,
            ExecOptions::default(),
            64,
        )
        .unwrap();
        assert!(total.score.abs() < 1e-10);
    }

    #[test]
    fn budget_truncation_still_returns_a_schedule() {
        let (lib, reg) = setup();
        // A loop with a choice inside: unbounded script space.
        let s = parse_stmt("while M01[q] do ( [q] *= X # [q] *= H ) end").unwrap();
        let rho = ket("1").projector();
        let post = Assertion::identity(2);
        let out = demonic_schedule(
            &s,
            &rho,
            &post,
            &lib,
            &reg,
            Mode::Partial,
            ExecOptions {
                fuel: 16,
                ..ExecOptions::default()
            },
            8,
        )
        .unwrap();
        assert!(!out.exhaustive);
        assert!(out.runs <= 8);
        assert!(out.score.is_finite());
    }
}
