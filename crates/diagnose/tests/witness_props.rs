//! Property tests for the counterexample extractor: on random loop-free
//! programs with deliberately weakened preconditions, every extracted
//! witness must *really* violate the triple under forward replay — the
//! replay gap is recomputed here independently, by executing the reported
//! schedule through the semantics crate — and programs that verify must
//! never yield a witness.

use nqpv_core::{Assertion, Mode, VcOptions};
use nqpv_diagnose::{explain_source, ScriptSched, CONFIRM_EPS};
use nqpv_lang::parse_stmt;
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_semantics::{exec_scheduled, ExecOptions};
use proptest::prelude::*;

/// Renders one random top-level statement from an opcode pair.
fn stmt_for(code: usize, sub: usize) -> String {
    let atom = |k: usize| {
        [
            "skip",
            "[q1] *= X",
            "[q2] *= H",
            "[q1] *= H",
            "[q1 q2] *= CX",
        ][k % 5]
    };
    match code % 7 {
        0 => "[q1] *= H".to_string(),
        1 => "[q2] *= X".to_string(),
        2 => "[q1 q2] *= CX".to_string(),
        3 => "[q1] := 0".to_string(),
        4 => format!("( {} # {} )", atom(sub), atom(sub + 3)),
        5 => format!("if M01[q1] then {} else {} end", atom(sub), atom(sub + 1)),
        _ => "[q2] *= H".to_string(),
    }
}

fn program(ops: &[(usize, usize)]) -> String {
    let stmts: Vec<String> = ops.iter().map(|&(c, s)| stmt_for(c, s)).collect();
    stmts.join("; ")
}

fn source(pre: &str, body: &str) -> String {
    format!("def pf := proof [q1 q2] : {{ {pre} }}; {body}; {{ P0[q1] }} end")
}

/// Recomputes the replay gap completely outside the diagnose crate:
/// parse the body, execute the reported schedule, and measure
/// `Exp(ρ ⊨ Θ) − (Exp(σ ⊨ Ψ) + slack)` from scratch.
fn independent_gap(
    body: &str,
    rho: &nqpv_linalg::CMat,
    schedule_right: &[bool],
    pre: &Assertion,
    post: &Assertion,
) -> f64 {
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q1", "q2"]).unwrap();
    let stmt = parse_stmt(body).unwrap();
    let mut sched = ScriptSched::new(schedule_right.to_vec());
    let sigma = exec_scheduled(&stmt, rho, &lib, &reg, &mut sched, ExecOptions::default()).unwrap();
    let slack = (rho.trace_re() - sigma.trace_re()).max(0.0);
    pre.expectation(rho) - (post.expectation(&sigma) + slack)
}

fn builtin_assertion(name: &str, qubit: &str) -> Assertion {
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q1", "q2"]).unwrap();
    let expr = nqpv_lang::AssertionExpr::singleton(nqpv_lang::OpApp::new(name, &[qubit]));
    Assertion::from_expr(&expr, &lib, &reg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn weakened_preconditions_yield_replay_confirmed_witnesses(
        ops in proptest::collection::vec((0usize..7, 0usize..5), 1..5),
    ) {
        let body = program(&ops);
        // { I[q1] } S { P0[q1] } is deliberately too strong a promise for
        // most S — whenever the verifier rejects it, the extractor must
        // hand back a witness whose violation replays for real.
        let src = source("I[q1]", &body);
        let report = explain_source(&src, std::path::Path::new("."), VcOptions::default())
            .expect("structurally clean by construction");
        prop_assert_eq!(report.len(), 1);
        if report[0].verified {
            prop_assert!(report[0].counterexample.is_none());
            // Nothing to diagnose for this sample.
            prop_assume!(false);
        }
        let cex = report[0].counterexample.as_ref().expect("rejected ⇒ witness");
        prop_assert!(cex.confirmed, "unconfirmed witness for {}: {:?}", body, cex);
        prop_assert!(cex.gap >= CONFIRM_EPS, "gap {} for {}", cex.gap, body);
        // The demon can always do at least as well as the solver's bound
        // on the violated VC element.
        prop_assert!(
            cex.gap >= cex.solver_margin - 1e-6,
            "replay gap {} below solver margin {} for {}",
            cex.gap, cex.solver_margin, body
        );
        // Replay the witness through the semantics crate, independently
        // of everything the extractor computed.
        let bits: Vec<bool> = cex.schedule.iter().map(|s| s.right).collect();
        let gap = independent_gap(
            &body,
            &cex.witness.rho,
            &bits,
            &builtin_assertion("I", "q1"),
            &builtin_assertion("P0", "q1"),
        );
        prop_assert!(
            (gap - cex.gap).abs() < 1e-9,
            "independent replay disagrees: {} vs {} for {}",
            gap, cex.gap, body
        );
        // Pure witnesses must be consistent with their amplitudes.
        if let Some(amps) = &cex.witness.amplitudes {
            let v = nqpv_linalg::CVec::new(amps.clone());
            prop_assert!(cex.witness.rho.approx_eq(&v.projector(), 1e-6));
        }
    }

    #[test]
    fn accepted_programs_never_yield_a_witness(
        ops in proptest::collection::vec((0usize..7, 0usize..5), 1..5),
    ) {
        // { Zero[q1] } S { P0[q1] } verifies for every S ({0} ⊑_inf Ψ
        // holds unconditionally), so no witness may appear.
        let body = program(&ops);
        let src = source("Zero[q1]", &body);
        let report = explain_source(&src, std::path::Path::new("."), VcOptions::default())
            .expect("structurally clean by construction");
        prop_assert!(report[0].verified, "{} unexpectedly rejected", body);
        prop_assert!(report[0].counterexample.is_none());

        // {I} S {I} likewise verifies for abort-free loop-free programs
        // (E†(I) = I for every branch).
        let src_i = format!(
            "def pf := proof [q1 q2] : {{ I[q1] }}; {body}; {{ I[q1] }} end"
        );
        let report_i = explain_source(&src_i, std::path::Path::new("."), VcOptions::default())
            .expect("structurally clean");
        prop_assert!(report_i[0].verified, "{} rejected against I", body);
        prop_assert!(report_i[0].counterexample.is_none());
    }

    #[test]
    fn total_mode_diagnoses_match_partial_on_massless_programs(
        ops in proptest::collection::vec((0usize..4, 0usize..5), 1..4),
    ) {
        // Abort-free programs lose no mass, so the liberal slack is zero
        // and the two modes must extract identical gaps.
        let body = program(&ops);
        let src = source("I[q1]", &body);
        let partial = explain_source(&src, std::path::Path::new("."), VcOptions::default())
            .expect("clean");
        let total = explain_source(
            &src,
            std::path::Path::new("."),
            VcOptions { mode: Mode::Total, ..VcOptions::default() },
        )
        .expect("clean");
        prop_assert_eq!(partial[0].verified, total[0].verified);
        match (&partial[0].counterexample, &total[0].counterexample) {
            (Some(a), Some(b)) => prop_assert!((a.gap - b.gap).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "modes disagree on witness existence for {}", body),
        }
    }
}
