//! Property tests for the intra-job parallel kernels and the f32
//! screening tier: the two invariants this layer promises downstream.
//!
//! 1. **Bitwise determinism**: every threaded sweep (gate columns,
//!    conjugation, blocked matmul, gram) produces byte-identical output
//!    at thread counts 1, 2 and 7, non-contiguous footprints included.
//! 2. **Screen soundness**: `screen_psd_f32` never contradicts the f64
//!    certificate — on near-boundary operators it abstains instead.

use nqpv_linalg::{
    adjoint_conjugate_gate, apply_gate_columns, c, conjugate_gate, eigh, gram, is_psd_pivoted, par,
    screen_psd_f32, CMat, ScreenVerdict,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises knob-twiddling tests against each other. Other concurrent
/// tests observing a mutated knob stay correct — results are bitwise
/// identical for every thread count by design — but each equivalence
/// test must control which path *it* exercises.
static KNOBS: Mutex<()> = Mutex::new(());

/// Runs `f` with the given kernel thread count and a threshold of 1 so
/// even tiny sweeps take the threaded path.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let old = par::parallel_threshold();
    par::set_parallel_threshold(1);
    par::set_kernel_threads(threads);
    let r = f();
    par::set_kernel_threads(1);
    par::set_parallel_threshold(old);
    r
}

/// Byte-level equality, distinguishing ±0.0 and NaN payloads.
fn bits_eq(a: &CMat, b: &CMat) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Strategy: a random complex matrix with entries in [-1, 1]², with
/// small entries flushed to a signed zero so the exact-zero skip paths
/// are exercised too.
fn cmat(rows: usize, cols: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), rows * cols).prop_map(move |xs| {
        let flush = |v: f64| {
            if v.abs() < 0.25 {
                if v < 0.0 {
                    -0.0
                } else {
                    0.0
                }
            } else {
                v
            }
        };
        CMat::from_vec(
            rows,
            cols,
            xs.into_iter()
                .map(|(re, im)| c(flush(re), flush(im)))
                .collect(),
        )
    })
}

/// Strategy: a random hermitian matrix (no zero-flush).
fn hermitian(dim: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), dim * dim)
        .prop_map(move |xs| {
            CMat::from_vec(dim, dim, xs.into_iter().map(|(re, im)| c(re, im)).collect())
        })
        .prop_map(|g| g.add_mat(&g.adjoint()).scale_re(0.5))
}

/// The pre-blocking reference matmul: naive ikj with the exact-zero skip.
fn mul_reference(a: &CMat, b: &CMat) -> CMat {
    let mut out = CMat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a[(i, k)];
            if av.is_exact_zero() {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += av * b[(k, j)];
            }
        }
    }
    out
}

/// Reference gram `A†B`, k-outer like the production kernel.
fn gram_reference(a: &CMat, b: &CMat) -> CMat {
    let mut g = CMat::zeros(a.cols(), b.cols());
    for k in 0..a.rows() {
        for i in 0..a.cols() {
            let ac = a[(k, i)].conj();
            if ac.is_exact_zero() {
                continue;
            }
            for j in 0..b.cols() {
                g[(i, j)] += ac * b[(k, j)];
            }
        }
    }
    g
}

/// Non-contiguous / reversed 2-qubit footprints on a 4-qubit register.
const FOOTPRINTS: [[usize; 2]; 4] = [[0, 2], [3, 1], [1, 3], [2, 0]];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threaded_gate_sweeps_match_serial_bitwise(
        gate in cmat(4, 4),
        op in cmat(16, 16),
        factor in cmat(16, 5),
        fp in 0usize..FOOTPRINTS.len(),
    ) {
        let pos = FOOTPRINTS[fp];
        let serial = with_threads(1, || {
            let mut cols = factor.clone();
            apply_gate_columns(&gate, &pos, 4, &mut cols);
            (
                cols,
                conjugate_gate(&gate, &pos, 4, &op),
                adjoint_conjugate_gate(&gate, &pos, 4, &op),
            )
        });
        for threads in [2usize, 7] {
            let threaded = with_threads(threads, || {
                let mut cols = factor.clone();
                apply_gate_columns(&gate, &pos, 4, &mut cols);
                (
                    cols,
                    conjugate_gate(&gate, &pos, 4, &op),
                    adjoint_conjugate_gate(&gate, &pos, 4, &op),
                )
            });
            prop_assert!(bits_eq(&serial.0, &threaded.0), "columns, {threads} threads");
            prop_assert!(bits_eq(&serial.1, &threaded.1), "conjugate, {threads} threads");
            prop_assert!(bits_eq(&serial.2, &threaded.2), "adjoint conjugate, {threads} threads");
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_reference_bitwise(
        a in cmat(17, 13),
        b in cmat(13, 9),
    ) {
        // Odd, non-power-of-two shapes stress the tile edges.
        let reference = mul_reference(&a, &b);
        for threads in [1usize, 2, 7] {
            let blocked = with_threads(threads, || a.mul(&b));
            prop_assert!(bits_eq(&reference, &blocked), "{threads} threads");
        }
    }

    #[test]
    fn threaded_gram_matches_reference_bitwise(
        a in cmat(32, 5),
        b in cmat(32, 7),
    ) {
        let reference = gram_reference(&a, &b);
        for threads in [1usize, 2, 7] {
            let threaded = with_threads(threads, || gram(&a, &b));
            prop_assert!(bits_eq(&reference, &threaded), "{threads} threads");
        }
    }

    #[test]
    fn f32_screen_never_contradicts_f64_near_the_boundary(
        h in hermitian(6),
        delta in -2e-6f64..2e-6,
    ) {
        // Shift the spectrum so λ_min lands within ±2e-6 of zero — right
        // where a sloppy screen would flip verdicts.
        let eps = 1e-7;
        let min = eigh(&h).unwrap().min();
        let shifted = h.sub_mat(&CMat::identity(6).scale_re(min + delta));
        match screen_psd_f32(&shifted, eps) {
            ScreenVerdict::Psd => prop_assert!(
                is_psd_pivoted(&shifted, eps),
                "screen accepted, f64 rejects (delta {delta:e})"
            ),
            ScreenVerdict::NotPsd => prop_assert!(
                !is_psd_pivoted(&shifted, eps),
                "screen rejected, f64 accepts (delta {delta:e})"
            ),
            ScreenVerdict::NearBoundary => {}
        }
    }

    #[test]
    fn f32_screen_agrees_on_generic_operators(h in hermitian(5)) {
        let eps = 1e-7;
        match screen_psd_f32(&h, eps) {
            ScreenVerdict::Psd => prop_assert!(is_psd_pivoted(&h, eps)),
            ScreenVerdict::NotPsd => prop_assert!(!is_psd_pivoted(&h, eps)),
            ScreenVerdict::NearBoundary => {}
        }
    }
}
