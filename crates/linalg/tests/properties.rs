//! Property-based tests for the linear-algebra substrate: the invariants
//! every downstream verification step silently relies on.

use nqpv_linalg::{
    c, cholesky, eigh, embed, is_psd, partial_trace, read_matrix_bytes, write_matrix_bytes, CMat,
    CVec,
};
use proptest::prelude::*;

/// Strategy: a random complex matrix with entries in [-1, 1]².
fn cmat(dim: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), dim * dim).prop_map(move |xs| {
        CMat::from_vec(dim, dim, xs.into_iter().map(|(re, im)| c(re, im)).collect())
    })
}

/// Strategy: a random hermitian matrix.
fn hermitian(dim: usize) -> impl Strategy<Value = CMat> {
    cmat(dim).prop_map(|g| g.add_mat(&g.adjoint()).scale_re(0.5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eigh_reconstructs_and_orders(h in hermitian(5)) {
        let e = eigh(&h).unwrap();
        prop_assert!(e.reconstruct().approx_eq(&h, 1e-7));
        prop_assert!(e.vectors.is_unitary(1e-7));
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-10);
        }
        // Trace = sum of eigenvalues.
        let tr: f64 = e.values.iter().sum();
        prop_assert!((tr - h.trace_re()).abs() < 1e-7);
    }

    #[test]
    fn cholesky_and_eigenvalues_agree_on_psdness(h in hermitian(4)) {
        let min = eigh(&h).unwrap().min();
        // Outside a narrow band around zero the two tests must agree.
        if min.abs() > 1e-6 {
            prop_assert_eq!(is_psd(&h, 1e-9), min > 0.0);
        }
        // A hermitian square is always PSD.
        let sq = h.mul(&h);
        prop_assert!(is_psd(&sq, 1e-8));
        let l = cholesky(&sq.add_mat(&CMat::identity(4).scale_re(1e-6)));
        prop_assert!(l.is_some());
    }

    #[test]
    fn adjoint_is_an_involution_and_antihomomorphism(a in cmat(4), b in cmat(4)) {
        prop_assert!(a.adjoint().adjoint().approx_eq(&a, 1e-12));
        prop_assert!(a.mul(&b).adjoint().approx_eq(&b.adjoint().mul(&a.adjoint()), 1e-9));
    }

    #[test]
    fn trace_is_cyclic(a in cmat(4), b in cmat(4), cm in cmat(4)) {
        let t1 = a.mul(&b).mul(&cm).trace();
        let t2 = cm.mul(&a).mul(&b).trace();
        prop_assert!(t1.approx_eq(t2, 1e-8));
    }

    #[test]
    fn kron_respects_products(a in cmat(2), b in cmat(2), cm in cmat(2), d in cmat(2)) {
        let lhs = a.kron(&b).mul(&cm.kron(&d));
        let rhs = a.mul(&cm).kron(&b.mul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn partial_trace_is_trace_preserving_and_linear(a in hermitian(8), b in hermitian(8)) {
        // 3-qubit space: trace out qubit 1.
        let ta = partial_trace(&a, &[1], 3);
        prop_assert!((ta.trace_re() - a.trace_re()).abs() < 1e-9);
        let tsum = partial_trace(&a.add_mat(&b), &[1], 3);
        prop_assert!(tsum.approx_eq(&ta.add_mat(&partial_trace(&b, &[1], 3)), 1e-9));
    }

    #[test]
    fn embed_preserves_spectrum_support(h in hermitian(2)) {
        // λ(M ⊗ I) = λ(M) each with doubled multiplicity.
        let big = embed(&h, &[0], 2);
        let small_eigs = eigh(&h).unwrap().values;
        let big_eigs = eigh(&big).unwrap().values;
        for lam in small_eigs {
            let count = big_eigs.iter().filter(|&&x| (x - lam).abs() < 1e-7).count();
            prop_assert!(count >= 2, "eigenvalue {lam} lost multiplicity");
        }
    }

    #[test]
    fn npy_round_trip_arbitrary(a in cmat(3)) {
        let bytes = write_matrix_bytes(&a);
        let back = read_matrix_bytes(&bytes).unwrap();
        prop_assert!(back.approx_eq(&a, 0.0));
    }

    #[test]
    fn outer_products_are_rank_one_projectors(xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 4)) {
        let v = CVec::new(xs.into_iter().map(|(re, im)| c(re, im)).collect());
        prop_assume!(v.norm() > 1e-3);
        let p = v.normalized().projector();
        prop_assert!(p.is_hermitian(1e-10));
        prop_assert!(p.mul(&p).approx_eq(&p, 1e-9));
        prop_assert!((p.trace_re() - 1.0).abs() < 1e-9);
        prop_assert!(is_psd(&p, 1e-9));
    }

    #[test]
    fn lowner_order_respects_addition_of_psd(h in hermitian(3), g in cmat(3)) {
        // h ⊑ h + GG† always.
        let psd = g.mul(&g.adjoint());
        prop_assert!(nqpv_linalg::lowner_le(&h, &h.add_mat(&psd), 1e-8));
    }
}
