//! Complex scalars over `f64`.
//!
//! The sanctioned dependency set contains no complex-number crate, so NQPV
//! carries its own minimal implementation. Only what the verification stack
//! needs is provided: field arithmetic, conjugation, modulus, polar helpers
//! and approximate comparison.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Default absolute tolerance used for approximate comparisons throughout the
/// workspace.
pub const TOL: f64 = 1e-9;

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::Complex;
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is exactly zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "attempt to invert zero");
        Complex::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// `true` if both components are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// `true` if the modulus is within `tol` of zero.
    #[inline]
    pub fn is_zero(self, tol: f64) -> bool {
        self.abs() <= tol
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` iff the value is an exact (bit-level) zero in both
    /// components, *including* negative zero: `±0.0 ± 0.0i` all count.
    ///
    /// This is the sanctioned guard for skip-zero fast paths in matrix
    /// kernels (`mul`, `kron`, `embed`): IEEE `-0.0 == 0.0` compares true,
    /// so ±0 entries contribute nothing but sign bits to any product, and
    /// skipping them cannot change a result beyond the sign of a zero.
    /// Deliberately *not* written as `norm_sqr() == 0.0`, which would also
    /// skip subnormal entries whose squares underflow to zero.
    #[inline]
    pub fn is_exact_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Shorthand constructor for a complex number.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{c, Complex};
/// assert_eq!(c(1.0, -2.0), Complex::new(1.0, -2.0));
/// ```
#[inline]
pub const fn c(re: f64, im: f64) -> Complex {
    Complex::new(re, im)
}

/// Shorthand constructor for a purely real complex number.
#[inline]
pub const fn cr(re: f64) -> Complex {
    Complex::real(re)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = c(1.5, -2.0);
        let b = c(-0.5, 3.25);
        let z = c(0.25, 0.125);
        assert!((a + b).approx_eq(b + a, TOL));
        assert!((a * b).approx_eq(b * a, TOL));
        assert!(((a + b) * z).approx_eq(a * z + b * z, TOL));
        assert!((a * a.recip()).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn conjugation_and_modulus() {
        let a = c(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.conj(), c(3.0, -4.0));
        assert!((a * a.conj()).approx_eq(cr(25.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let a = c(-1.0, 1.0);
        let b = Complex::from_polar(a.abs(), a.arg());
        assert!(a.approx_eq(b, 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c(4.0, 0.0), c(0.0, 2.0), c(-1.0, 0.0), c(3.0, -4.0)] {
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-9), "sqrt({z}) = {s}");
        }
    }

    #[test]
    fn division() {
        let a = c(1.0, 2.0);
        let b = c(3.0, -1.0);
        assert!(((a / b) * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn display_signs() {
        assert_eq!(c(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops() {
        let mut a = c(1.0, 1.0);
        a += c(1.0, 0.0);
        a -= c(0.0, 1.0);
        a *= c(2.0, 0.0);
        a /= c(1.0, 0.0);
        assert!(a.approx_eq(c(4.0, 0.0), TOL));
    }

    #[test]
    fn sum_iterator() {
        let total: Complex = (0..4).map(|k| c(k as f64, 1.0)).sum();
        assert!(total.approx_eq(c(6.0, 4.0), TOL));
    }
}
