//! Dense complex matrices and vectors.
//!
//! [`CMat`] is a row-major dense matrix over [`Complex`]; [`CVec`] is a dense
//! complex vector. These are the workhorses of the whole verification stack:
//! predicates, density operators, unitaries and Kraus operators are all
//! `CMat`s, pure states are `CVec`s.

use crate::complex::{cr, Complex, TOL};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// Inner-dimension tile for [`CMat::mul`]: a 64-row block of the right
/// operand (64·cols complex entries, 1 KiB per 64 columns) stays
/// cache-resident while every output row in the chunk streams over it.
const MUL_BLOCK_K: usize = 64;

/// A dense complex column vector.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::CVec;
/// let v = CVec::basis(4, 2);
/// assert_eq!(v.dim(), 4);
/// assert!((v.norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CVec {
    data: Vec<Complex>,
}

impl CVec {
    /// Creates a vector from raw components.
    pub fn new(data: Vec<Complex>) -> Self {
        CVec { data }
    }

    /// Creates a zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        CVec {
            data: vec![Complex::ZERO; n],
        }
    }

    /// Creates the `k`-th computational basis vector of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn basis(n: usize, k: usize) -> Self {
        assert!(k < n, "basis index {k} out of range for dimension {n}");
        let mut v = CVec::zeros(n);
        v.data[k] = Complex::ONE;
        v
    }

    /// Creates a vector from real components.
    pub fn from_real(data: &[f64]) -> Self {
        CVec {
            data: data.iter().map(|&x| cr(x)).collect(),
        }
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the components.
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable view of the components.
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Hermitian inner product `⟨self|other⟩` (conjugate-linear in `self`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &CVec) -> Complex {
        assert_eq!(self.dim(), other.dim(), "inner product dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns the vector scaled to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the norm is (numerically) zero.
    pub fn normalized(&self) -> CVec {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalise the zero vector");
        self.scale(cr(1.0 / n))
    }

    /// Scales every component by `s`.
    pub fn scale(&self, s: Complex) -> CVec {
        CVec {
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Outer product `|self⟩⟨other|`.
    pub fn outer(&self, other: &CVec) -> CMat {
        let mut m = CMat::zeros(self.dim(), other.dim());
        for i in 0..self.dim() {
            for j in 0..other.dim() {
                m[(i, j)] = self.data[i] * other.data[j].conj();
            }
        }
        m
    }

    /// Rank-1 projector `|self⟩⟨self|` (the `[|ψ⟩]` of the paper).
    pub fn projector(&self) -> CMat {
        self.outer(self)
    }

    /// Tensor product `self ⊗ other`.
    pub fn kron(&self, other: &CVec) -> CVec {
        let mut data = Vec::with_capacity(self.dim() * other.dim());
        for &a in &self.data {
            for &b in &other.data {
                data.push(a * b);
            }
        }
        CVec { data }
    }

    /// `true` if all components are within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &CVec, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

impl Index<usize> for CVec {
    type Output = Complex;
    fn index(&self, i: usize) -> &Complex {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVec {
    fn index_mut(&mut self, i: usize) -> &mut Complex {
        &mut self.data[i]
    }
}

impl Add for &CVec {
    type Output = CVec;
    fn add(self, rhs: &CVec) -> CVec {
        assert_eq!(self.dim(), rhs.dim(), "vector addition dimension mismatch");
        CVec {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CVec {
    type Output = CVec;
    fn sub(self, rhs: &CVec) -> CVec {
        assert_eq!(
            self.dim(),
            rhs.dim(),
            "vector subtraction dimension mismatch"
        );
        CVec {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::CMat;
/// let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
/// assert!(x.is_hermitian(1e-12));
/// assert!(x.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMat {
    /// Creates a matrix from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        CMat { rows, cols, data }
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        CMat { rows, cols, data }
    }

    /// Creates a matrix from row-major real entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != rows * cols`.
    pub fn from_real(rows: usize, cols: usize, entries: &[f64]) -> Self {
        assert_eq!(entries.len(), rows * cols, "matrix data length mismatch");
        CMat {
            rows,
            cols,
            data: entries.iter().map(|&x| cr(x)).collect(),
        }
    }

    /// Creates a diagonal matrix from the given (complex) diagonal.
    pub fn diag(d: &[Complex]) -> Self {
        let n = d.len();
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = d[i];
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    pub fn row(&self, i: usize) -> &[Complex] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> CVec {
        CVec::new((0..self.rows).map(|i| self[(i, j)]).collect())
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Trace `tr(A)`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Real part of the trace (traces of hermitian products are real).
    pub fn trace_re(&self) -> f64 {
        self.trace().re
    }

    /// `tr(A·B)` computed without materialising the product.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not compatible (`A: m×n`, `B: n×m`).
    pub fn trace_product(&self, other: &CMat) -> Complex {
        assert_eq!(self.cols, other.rows, "trace_product shape mismatch");
        assert_eq!(self.rows, other.cols, "trace_product shape mismatch");
        let mut acc = Complex::ZERO;
        for i in 0..self.rows {
            for k in 0..self.cols {
                acc += self[(i, k)] * other[(k, i)];
            }
        }
        acc
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.dim() != self.cols()`.
    pub fn mul_vec(&self, v: &CVec) -> CVec {
        assert_eq!(self.cols, v.dim(), "matvec dimension mismatch");
        let mut out = CVec::zeros(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = Complex::ZERO;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += *a * *b;
            }
            out[i] = acc;
        }
        out
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: Complex) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_re(&self, s: f64) -> CMat {
        self.scale(cr(s))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// `true` if all entries are within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &CMat, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// `true` if `A† = A` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if `A†A = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().mul(self);
        prod.approx_eq(&CMat::identity(self.rows), tol)
    }

    /// Hermitian part `(A + A†)/2`; useful to repair rounding drift.
    pub fn hermitize(&self) -> CMat {
        assert!(self.is_square(), "hermitize of a non-square matrix");
        let adj = self.adjoint();
        let mut m = self.clone();
        for (a, b) in m.data.iter_mut().zip(adj.data) {
            *a = (*a + b).scale(0.5);
        }
        m
    }

    /// Matrix product `A·B`, cache-blocked over the inner (`k`)
    /// dimension and row-parallel across the kernel backend.
    ///
    /// The i-k-j loop is tiled so a [`MUL_BLOCK_K`]-row block of `rhs`
    /// stays cache-resident while every output row streams over it —
    /// `rhs` traffic drops from `rows·cols·16B` per output row to one
    /// pass per block. Each output element still accumulates its `k`
    /// contributions in strictly ascending order (blocks ascend, `k`
    /// ascends within a block) and keeps the exact-zero skip, so results
    /// are bitwise identical to the untiled kernel — and to every thread
    /// count, since a row is computed wholly inside one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        let ncols = rhs.cols;
        if self.rows == 0 || ncols == 0 || self.cols == 0 {
            return out;
        }
        let shared = crate::par::SharedMut::new(&mut out.data);
        crate::par::sweep(self.rows, self.cols * ncols, |rows| {
            for kb in (0..self.cols).step_by(MUL_BLOCK_K) {
                let kend = self.cols.min(kb + MUL_BLOCK_K);
                for i in rows.clone() {
                    // SAFETY: chunks own disjoint row ranges, so the
                    // reconstituted output rows never alias across
                    // threads; the borrow of `out` outlives the sweep.
                    let orow = unsafe {
                        std::slice::from_raw_parts_mut(shared.ptr().add(i * ncols), ncols)
                    };
                    for k in kb..kend {
                        let a = self[(i, k)];
                        // Skip exact (±0) zeros only — see `Complex::is_exact_zero`.
                        if a.is_exact_zero() {
                            continue;
                        }
                        let rrow = &rhs.data[k * ncols..(k + 1) * ncols];
                        for (o, r) in orow.iter_mut().zip(rrow) {
                            *o += a * *r;
                        }
                    }
                }
            }
        });
        out
    }

    /// Conjugation `A·B·A†` (e.g. `UρU†`, `KρK†`).
    pub fn conjugate(&self, inner: &CMat) -> CMat {
        self.mul(inner).mul(&self.adjoint())
    }

    /// Adjoint conjugation `A†·B·A` (e.g. `U†MU` in Heisenberg picture).
    pub fn adjoint_conjugate(&self, inner: &CMat) -> CMat {
        self.adjoint().mul(inner).mul(self)
    }

    /// Tensor (Kronecker) product `self ⊗ other`.
    pub fn kron(&self, other: &CMat) -> CMat {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        let mut out = CMat::zeros(rows, cols);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self[(i1, j1)];
                // Skip exact (±0) zeros only — see `Complex::is_exact_zero`.
                if a.is_exact_zero() {
                    continue;
                }
                for i2 in 0..other.rows {
                    let dst = (i1 * other.rows + i2) * cols + j1 * other.cols;
                    let src = i2 * other.cols;
                    for j2 in 0..other.cols {
                        out.data[dst + j2] = a * other.data[src + j2];
                    }
                }
            }
        }
        out
    }

    /// Matrix power by repeated squaring (non-negative exponent).
    pub fn pow(&self, mut e: u32) -> CMat {
        assert!(self.is_square(), "pow of a non-square matrix");
        let mut result = CMat::identity(self.rows);
        let mut base = self.clone();
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            base = base.mul(&base);
            e >>= 1;
        }
        result
    }

    /// `self + other` (checked).
    pub fn add_mat(&self, other: &CMat) -> CMat {
        assert_eq!(self.rows, other.rows, "addition shape mismatch");
        assert_eq!(self.cols, other.cols, "addition shape mismatch");
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }

    /// `self - other` (checked).
    pub fn sub_mat(&self, other: &CMat) -> CMat {
        assert_eq!(self.rows, other.rows, "subtraction shape mismatch");
        assert_eq!(self.cols, other.cols, "subtraction shape mismatch");
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }

    /// `true` if every entry has modulus below `tol`.
    pub fn is_zero(&self, tol: f64) -> bool {
        self.data.iter().all(|z| z.is_zero(tol))
    }

    /// `true` if any entry is NaN.
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|z| z.is_nan())
    }

    /// A quantised fingerprint of the matrix, suitable for deduplicating
    /// numerically-equal matrices inside assertion sets.
    ///
    /// Entries are rounded to `1/scale` before hashing, so matrices within
    /// about `1/scale` of each other in every entry receive equal keys.
    pub fn fingerprint(&self, scale: f64) -> u64 {
        // FNV-1a-style mix over the quantised entries, one multiply per
        // 64-bit word rather than per byte — fingerprinting is on the
        // outline-rendering path for every intermediate predicate, so the
        // 8× matters at 2ⁿ×2ⁿ sizes.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut feed = |x: f64| {
            let q = (x * scale).round() as i64;
            h ^= q as u64;
            h = h.wrapping_mul(0x100000001b3);
            h ^= h >> 32;
            h = h.wrapping_mul(0x100000001b3);
        };
        feed(self.rows as f64);
        feed(self.cols as f64);
        for z in &self.data {
            // Canonicalise -0.0 to 0.0 before quantising.
            feed(z.re + 0.0);
            feed(z.im + 0.0);
        }
        h
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        self.add_mat(rhs)
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        self.sub_mat(rhs)
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        CMat::mul(self, rhs)
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.scale(cr(-1.0))
    }
}

impl AddAssign<&CMat> for CMat {
    fn add_assign(&mut self, rhs: &CMat) {
        assert_eq!(self.rows, rhs.rows, "addition shape mismatch");
        assert_eq!(self.cols, rhs.cols, "addition shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                let z = self[(i, j)];
                if z.im.abs() < TOL {
                    write!(f, "{:.4}", z.re)?;
                } else {
                    write!(f, "{:.4}{:+.4}i", z.re, z.im)?;
                }
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;

    fn pauli_x() -> CMat {
        CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_y() -> CMat {
        CMat::from_vec(
            2,
            2,
            vec![c(0.0, 0.0), c(0.0, -1.0), c(0.0, 1.0), c(0.0, 0.0)],
        )
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let i = CMat::identity(2);
        assert!(x.mul(&i).approx_eq(&x, TOL));
        assert!(i.mul(&x).approx_eq(&x, TOL));
    }

    #[test]
    fn zero_skip_treats_negative_zero_like_positive_zero() {
        // Regression: the mul/kron fast paths skip exact-zero entries; IEEE
        // `-0.0 == 0.0` means -0.0 entries take the skip too, and the result
        // must be bit-for-bit what the +0.0 matrix produces.
        let with_neg = CMat::from_vec(
            2,
            2,
            vec![c(-0.0, 0.0), c(1.0, -0.0), c(-0.0, -0.0), c(2.0, 0.5)],
        );
        let mut normalised = with_neg.clone();
        for z in normalised.as_mut_slice() {
            // +0.0 canonical form of every component.
            z.re += 0.0;
            z.im += 0.0;
        }
        let other = CMat::from_fn(2, 2, |i, j| c(0.3 * i as f64 - 0.1, 0.2 * j as f64 + 0.4));
        for (a, b) in with_neg
            .mul(&other)
            .as_slice()
            .iter()
            .zip(normalised.mul(&other).as_slice())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        for (a, b) in with_neg
            .kron(&other)
            .as_slice()
            .iter()
            .zip(normalised.kron(&other).as_slice())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // But a subnormal entry whose square underflows must NOT be skipped
        // (the reason the guard is not `norm_sqr() == 0.0`).
        let tiny = 1e-200;
        assert!(!c(tiny, 0.0).is_exact_zero());
        let sub = CMat::from_vec(1, 1, vec![c(tiny, 0.0)]);
        let prod = sub.mul(&CMat::from_vec(1, 1, vec![c(2.0, 0.0)]));
        assert_eq!(prod[(0, 0)].re, 2.0 * tiny);
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let y = pauli_y();
        // XY = iZ
        let xy = x.mul(&y);
        let z = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]);
        assert!(xy.approx_eq(&z.scale(Complex::I), TOL));
        // X² = I
        assert!(x.mul(&x).approx_eq(&CMat::identity(2), TOL));
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = CMat::from_fn(3, 3, |i, j| c(i as f64, j as f64 * 0.5));
        let b = CMat::from_fn(3, 3, |i, j| c(j as f64 - i as f64, 1.0));
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn trace_properties() {
        let a = CMat::from_fn(4, 4, |i, j| c((i + j) as f64, (i * j) as f64));
        let b = CMat::from_fn(4, 4, |i, j| c((i as f64 - j as f64).abs(), 1.0));
        // tr(AB) = tr(BA)
        let t1 = a.mul(&b).trace();
        let t2 = b.mul(&a).trace();
        assert!(t1.approx_eq(t2, 1e-9));
        // trace_product agrees with materialised product
        assert!(a.trace_product(&b).approx_eq(t1, 1e-9));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c_ = CMat::identity(2);
        let d = pauli_x();
        let lhs = a.kron(&b).mul(&c_.kron(&d));
        let rhs = a.mul(&c_).kron(&b.mul(&d));
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn kron_dimensions() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(4, 5);
        let k = a.kron(&b);
        assert_eq!((k.rows(), k.cols()), (8, 15));
    }

    #[test]
    fn outer_product_and_projector() {
        let v = CVec::new(vec![c(1.0, 0.0), c(0.0, 1.0)]).normalized();
        let p = v.projector();
        assert!(p.is_hermitian(TOL));
        // P² = P
        assert!(p.mul(&p).approx_eq(&p, TOL));
        assert!((p.trace_re() - 1.0).abs() < TOL);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = CMat::from_fn(3, 3, |i, j| c(i as f64 + 1.0, j as f64));
        let v = CVec::new(vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 0.5)]);
        let av = a.mul_vec(&v);
        for i in 0..3 {
            let mut acc = Complex::ZERO;
            for j in 0..3 {
                acc += a[(i, j)] * v[j];
            }
            assert!(av[i].approx_eq(acc, TOL));
        }
    }

    #[test]
    fn hermitian_and_unitary_checks() {
        assert!(pauli_x().is_hermitian(TOL));
        assert!(pauli_x().is_unitary(TOL));
        assert!(pauli_y().is_hermitian(TOL));
        let not_h = CMat::from_real(2, 2, &[0.0, 1.0, 0.0, 0.0]);
        assert!(!not_h.is_hermitian(TOL));
        assert!(!not_h.is_unitary(TOL));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = CMat::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        let a5 = a.pow(5);
        let mut manual = CMat::identity(2);
        for _ in 0..5 {
            manual = manual.mul(&a);
        }
        assert!(a5.approx_eq(&manual, TOL));
        assert!(a.pow(0).approx_eq(&CMat::identity(2), TOL));
    }

    #[test]
    fn fingerprint_dedupe_behaviour() {
        let a = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let mut b = a.clone();
        b[(0, 0)] = c(1.0 + 1e-12, 0.0);
        assert_eq!(a.fingerprint(1e6), b.fingerprint(1e6));
        let c_ = CMat::from_real(2, 2, &[2.0, 0.0, 0.0, 1.0]);
        assert_ne!(a.fingerprint(1e6), c_.fingerprint(1e6));
    }

    #[test]
    fn vector_basics() {
        let v = CVec::basis(4, 1);
        let w = CVec::basis(4, 2);
        assert!(v.dot(&w).is_zero(TOL));
        assert!((&v + &w).norm() - 2f64.sqrt() < TOL);
        let kr = v.kron(&w);
        assert_eq!(kr.dim(), 16);
        assert!(kr[4 + 2].approx_eq(Complex::ONE, TOL));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn mismatched_matmul_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    fn hermitize_repairs_drift() {
        let mut a = pauli_x();
        a[(0, 1)] = c(1.0 + 1e-13, 1e-13);
        let h = a.hermitize();
        assert!(h.is_hermitian(0.0_f64.max(1e-15)));
    }
}
