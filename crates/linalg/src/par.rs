//! Intra-job data parallelism for the strided tensor kernels.
//!
//! The engine's worker pool parallelises *across* jobs; this module
//! parallelises *inside* one job's hot sweeps (gate-column sweeps,
//! conjugation row/column sweeps, blocked matmul row ranges) by chunking
//! an index range over scoped `std::thread`s — no external dependencies.
//!
//! Design constraints, in order:
//!
//! 1. **Bitwise determinism.** A sweep chunk computes each output element
//!    completely (its floating-point accumulation order never spans a
//!    chunk boundary), so results are identical for every thread count,
//!    including 1. Scheduling only decides *where* an element is
//!    computed, never *how*.
//! 2. **Serial by default.** The thread count comes from
//!    [`set_kernel_threads`] (the `--kernel-threads` CLI knob) or the
//!    `NQPV_KERNEL_THREADS` environment variable, and defaults to 1.
//!    Small sweeps stay serial regardless — below
//!    [`parallel_threshold`] elements of work, spawning costs more than
//!    it saves.
//! 3. **Cooperative cancellation.** When the engine arms a job deadline
//!    ([`with_job_deadline`]), chunk boundaries observe it even in the
//!    middle of one giant sweep; expiry unwinds with a [`KernelTimeout`]
//!    payload that the engine's panic shield converts into a structured
//!    timeout verdict.
//!
//! The seam is the [`KernelBackend`] trait: [`ThreadedBackend`] is the
//! first implementation, and the ROADMAP's stretch backends (GPU,
//! structured/stabilizer kernels) install themselves through
//! [`install_backend`] without touching any call site.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::RwLock;
use std::time::Instant;

/// Hard ceiling on the kernel thread count: beyond this, scoped-thread
/// spawn overhead dwarfs any sweep this crate runs.
pub const MAX_KERNEL_THREADS: usize = 256;

/// Default serial/parallel cut-over, in sweep work elements (an element
/// ≈ one complex multiply-accumulate). `2^15` keeps every sub-7-qubit
/// instance — where sweeps finish in microseconds — on the serial path.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 15;

/// Work elements between cooperative deadline checks on the serial path
/// (~100 µs of scalar FLOPs), so `--job-timeout` interrupts a giant
/// sweep promptly without measurable overhead.
const DEADLINE_CHECK_WORK: usize = 1 << 18;

/// Sentinel meaning "not yet resolved from the environment".
const THREADS_UNSET: usize = 0;

static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(THREADS_UNSET);
static PARALLEL_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PARALLEL_THRESHOLD);

/// The effective kernel thread count: the last [`set_kernel_threads`]
/// value, else `NQPV_KERNEL_THREADS`, else 1 (serial).
pub fn kernel_threads() -> usize {
    let v = KERNEL_THREADS.load(Ordering::Relaxed);
    if v != THREADS_UNSET {
        return v;
    }
    let resolved = std::env::var("NQPV_KERNEL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_KERNEL_THREADS))
        .unwrap_or(1);
    // Racing first calls resolve the same env value; last store wins.
    KERNEL_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Sets the process-wide kernel thread count (clamped to
/// `1..=`[`MAX_KERNEL_THREADS`]). `0` restores the serial default.
/// Results are bitwise identical for every value — this knob trades
/// wall-clock for cores, nothing else.
pub fn set_kernel_threads(n: usize) {
    KERNEL_THREADS.store(n.clamp(1, MAX_KERNEL_THREADS), Ordering::Relaxed);
}

/// The current serial/parallel cut-over in work elements.
pub fn parallel_threshold() -> usize {
    PARALLEL_THRESHOLD.load(Ordering::Relaxed)
}

/// Overrides the serial/parallel cut-over. Tests and benchmarks use this
/// to force small sweeps through the threaded path; production code
/// should leave the default.
pub fn set_parallel_threshold(work: usize) {
    PARALLEL_THRESHOLD.store(work.max(1), Ordering::Relaxed);
}

/// Panic payload thrown when a kernel sweep observes an expired job
/// deadline. The engine's per-job panic shield downcasts to this and
/// reports a cooperative timeout instead of a worker panic.
#[derive(Debug)]
pub struct KernelTimeout;

thread_local! {
    static JOB_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Arms a cooperative deadline for every kernel sweep `f` runs (on this
/// thread and the sweep threads it spawns). On expiry the sweep unwinds
/// with a [`KernelTimeout`] payload. Nesting restores the previous
/// deadline on exit, panic included.
pub fn with_job_deadline<R>(deadline: Option<Instant>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOB_DEADLINE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(JOB_DEADLINE.with(|c| c.replace(deadline)));
    f()
}

fn job_deadline() -> Option<Instant> {
    JOB_DEADLINE.with(|c| c.get())
}

/// A compute backend for the chunked kernel sweeps. Implementations
/// split `0..items` into disjoint subranges covering it exactly once and
/// run `task` on each; they may use any placement (threads, offload)
/// because every task chunk is independent and writes disjoint output.
pub trait KernelBackend: Sync {
    /// Backend name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs `task` over disjoint chunks of `0..items`. `work_per_item`
    /// estimates the FLOP-ish cost of one item so the backend can keep
    /// cheap sweeps serial and pick sensible chunk sizes.
    fn for_each_chunk(
        &self,
        items: usize,
        work_per_item: usize,
        task: &(dyn Fn(Range<usize>) + Sync),
    );
}

/// The scoped-`std::thread` backend: work-steals fixed-size chunks off a
/// shared atomic cursor with up to [`kernel_threads`] workers, observing
/// the job deadline between chunks.
#[derive(Debug, Default)]
pub struct ThreadedBackend;

impl KernelBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn for_each_chunk(
        &self,
        items: usize,
        work_per_item: usize,
        task: &(dyn Fn(Range<usize>) + Sync),
    ) {
        if items == 0 {
            return;
        }
        let threads = kernel_threads().min(items);
        let total = items.saturating_mul(work_per_item.max(1));
        // Only giant sweeps observe the job deadline mid-sweep: small
        // ones finish in microseconds anyway, and letting them trip the
        // deadline first would pre-empt the statement-boundary timeout
        // report (which carries the partial trajectory).
        let deadline = if total >= DEADLINE_CHECK_WORK {
            job_deadline()
        } else {
            None
        };
        if threads <= 1 || total < parallel_threshold() {
            run_serial(items, work_per_item, deadline, task);
            return;
        }
        // ~4 chunks per worker balance load without cursor contention.
        let chunk = items.div_ceil(threads * 4).max(1);
        let cursor = AtomicUsize::new(0);
        let expired = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    if let Some(dl) = deadline {
                        if Instant::now() >= dl {
                            expired.store(true, Ordering::Relaxed);
                        }
                    }
                    if expired.load(Ordering::Relaxed) {
                        break;
                    }
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items {
                        break;
                    }
                    task(start..items.min(start + chunk));
                });
            }
        });
        if expired.load(Ordering::Relaxed) {
            // Unwind on the parent thread so the payload reaches the
            // engine's catch_unwind intact (scoped-thread panics do not
            // carry payloads across the scope boundary reliably).
            std::panic::panic_any(KernelTimeout);
        }
    }
}

/// Serial execution with periodic deadline checks. Without a deadline
/// this is a single `task(0..items)` call — zero overhead.
fn run_serial(
    items: usize,
    work_per_item: usize,
    deadline: Option<Instant>,
    task: &(dyn Fn(Range<usize>) + Sync),
) {
    let Some(dl) = deadline else {
        task(0..items);
        return;
    };
    let per = (DEADLINE_CHECK_WORK / work_per_item.max(1)).max(1);
    let mut start = 0;
    while start < items {
        if Instant::now() >= dl {
            std::panic::panic_any(KernelTimeout);
        }
        let end = items.min(start + per);
        task(start..end);
        start = end;
    }
}

static THREADED: ThreadedBackend = ThreadedBackend;
static BACKEND: RwLock<&'static (dyn KernelBackend + Send + Sync)> = RwLock::new(&THREADED);

/// Installs a process-wide kernel backend (the GPU/stabilizer seam).
pub fn install_backend(backend: &'static (dyn KernelBackend + Send + Sync)) {
    *BACKEND.write().unwrap_or_else(|e| e.into_inner()) = backend;
}

/// The currently installed backend.
pub fn backend() -> &'static (dyn KernelBackend + Send + Sync) {
    *BACKEND.read().unwrap_or_else(|e| e.into_inner())
}

/// Runs `task` over disjoint chunks of `0..items` on the installed
/// backend. This is the one entry point every chunked kernel sweep goes
/// through.
///
/// Contract for `task`: chunks must be independent — each item's writes
/// must target locations no other item touches, and each output value
/// must be computed entirely within the chunk that owns its item (so
/// accumulation order cannot depend on the chunking).
pub fn sweep(items: usize, work_per_item: usize, task: impl Fn(Range<usize>) + Sync) {
    backend().for_each_chunk(items, work_per_item, &task);
}

/// A raw shared-mutable view of a slice for sweep chunks whose write
/// index sets are provably disjoint (interleaved strided columns, rows).
/// Safe Rust cannot express "aliased `&mut` with disjoint writes", so
/// sweep call sites capture one of these and go through raw-pointer
/// element access inside the kernel.
pub struct SharedMut<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: the pointer is only dereferenced inside `sweep` tasks, whose
// contract (disjoint per-item writes, chunk-complete computation)
// excludes data races by construction.
unsafe impl<T: Send> Send for SharedMut<T> {}
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Wraps a uniquely borrowed slice. The borrow's lifetime outlives
    /// every scoped sweep thread, so the pointer stays valid for the
    /// whole sweep.
    pub fn new(slice: &mut [T]) -> SharedMut<T> {
        SharedMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// The underlying element pointer.
    pub fn ptr(&self) -> *mut T {
        self.ptr
    }

    /// Length of the wrapped slice, for bounds assertions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Serialises tests that mutate the process-global thread count.
    static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

    #[test]
    fn serial_sweep_covers_range_once() {
        let mut hits = vec![0u8; 100];
        let cells = SharedMut::new(&mut hits);
        sweep(100, 1, |r| {
            for i in r {
                unsafe { *cells.ptr().add(i) += 1 };
            }
        });
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn threaded_sweep_covers_range_exactly_once() {
        let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        let old_thr = parallel_threshold();
        set_parallel_threshold(1);
        set_kernel_threads(7);
        let mut hits = vec![0u8; 10_000];
        let cells = SharedMut::new(&mut hits);
        sweep(10_000, 64, |r| {
            for i in r {
                unsafe { *cells.ptr().add(i) += 1 };
            }
        });
        set_kernel_threads(1);
        set_parallel_threshold(old_thr);
        assert!(hits.iter().all(|&h| h == 1), "every item exactly once");
    }

    #[test]
    fn small_work_stays_serial_even_with_many_threads() {
        let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        set_kernel_threads(8);
        let calls = AtomicUsize::new(0);
        // 64 items × 1 work < threshold ⇒ one serial chunk.
        sweep(64, 1, |r| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(r, 0..64);
        });
        set_kernel_threads(1);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn expired_deadline_unwinds_with_kernel_timeout() {
        let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        for threads in [1usize, 4] {
            let old_thr = parallel_threshold();
            set_parallel_threshold(1);
            set_kernel_threads(threads);
            let caught = std::panic::catch_unwind(|| {
                with_job_deadline(Some(Instant::now() - Duration::from_secs(1)), || {
                    sweep(1 << 20, 1 << 10, |_r| {});
                })
            });
            set_kernel_threads(1);
            set_parallel_threshold(old_thr);
            let payload = caught.expect_err("expired deadline must unwind");
            assert!(
                payload.downcast_ref::<KernelTimeout>().is_some(),
                "payload must be KernelTimeout ({threads} threads)"
            );
        }
        // The thread-local is restored after unwinding.
        assert!(job_deadline().is_none());
    }

    #[test]
    fn unarmed_deadline_never_fires() {
        with_job_deadline(None, || {
            sweep(1024, 1024, |_r| {});
        });
        // Nested scopes restore the outer deadline.
        let far = Instant::now() + Duration::from_secs(3600);
        with_job_deadline(Some(far), || {
            assert_eq!(job_deadline(), Some(far));
            with_job_deadline(None, || assert_eq!(job_deadline(), None));
            assert_eq!(job_deadline(), Some(far));
        });
    }

    #[test]
    fn kernel_thread_knob_clamps() {
        let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        set_kernel_threads(100_000);
        assert_eq!(kernel_threads(), MAX_KERNEL_THREADS);
        set_kernel_threads(0);
        assert_eq!(kernel_threads(), 1);
        set_kernel_threads(1);
    }

    #[test]
    fn default_backend_is_threaded() {
        assert_eq!(backend().name(), "threaded");
    }
}
