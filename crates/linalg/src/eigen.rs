//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! Quantum predicates, density operators and observables are all hermitian;
//! their spectra drive the Löwner-order tests and the `⊑_inf` decision
//! procedure of the paper (Sec. 6.3). The Jacobi method is slow for very
//! large matrices but unconditionally robust, which is what a verifier
//! needs; the `nqpv-solver` crate layers faster Lanczos-based extreme
//! eigenvalue routines on top for the performance experiments.

use crate::complex::{cr, Complex};
use crate::matrix::{CMat, CVec};

/// Result of a hermitian eigendecomposition `A = V · diag(λ) · V†`.
///
/// Eigenvalues are real and sorted ascending; `vectors.col(k)` is the
/// eigenvector for `values[k]`.
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the eigenvectors.
    pub vectors: CMat,
}

impl Eigh {
    /// Reconstructs `V · diag(λ) · V†`; used in tests and spectral projections.
    pub fn reconstruct(&self) -> CMat {
        let _n = self.values.len();
        let d = CMat::diag(&self.values.iter().map(|&x| cr(x)).collect::<Vec<_>>());
        let v = &self.vectors;
        v.mul(&d).mul(&v.adjoint())
    }

    /// The eigenvector for `values[k]`.
    pub fn vector(&self, k: usize) -> CVec {
        self.vectors.col(k)
    }

    /// Smallest eigenvalue.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest eigenvalue.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("empty spectrum")
    }

    /// Spectral projector onto the eigenspace of eigenvalues within
    /// `tol` of `lambda`. This realises the observable→measurement
    /// construction of Sec. 2 of the paper.
    pub fn eigenprojector(&self, lambda: f64, tol: f64) -> CMat {
        let n = self.values.len();
        let mut p = CMat::zeros(n, n);
        for (k, &v) in self.values.iter().enumerate() {
            if (v - lambda).abs() <= tol {
                let col = self.vector(k);
                p += &col.projector();
            }
        }
        p
    }

    /// Distinct eigenvalues (within `tol`), ascending.
    pub fn distinct_values(&self, tol: f64) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for &v in &self.values {
            if out.last().is_none_or(|&last| (v - last).abs() > tol) {
                out.push(v);
            }
        }
        out
    }
}

/// Error raised when an eigendecomposition is requested for an unsuitable
/// matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EighError {
    /// The matrix is not square.
    NotSquare,
    /// The matrix is not hermitian within the documented tolerance.
    NotHermitian,
    /// Jacobi sweeps failed to converge (pathological input, e.g. NaNs).
    NoConvergence,
}

impl std::fmt::Display for EighError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EighError::NotSquare => write!(f, "matrix is not square"),
            EighError::NotHermitian => write!(f, "matrix is not hermitian"),
            EighError::NoConvergence => write!(f, "jacobi iteration failed to converge"),
        }
    }
}

impl std::error::Error for EighError {}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Hermitian eigendecomposition.
///
/// The input is symmetrised (`(A+A†)/2`) first, so tiny hermiticity drift
/// from upstream arithmetic is tolerated; inputs that are *structurally*
/// non-hermitian are rejected.
///
/// # Errors
///
/// Returns [`EighError`] if the matrix is not square, not hermitian within
/// `1e-7`, or the iteration does not converge.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{CMat, eigh};
/// let z = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]);
/// let e = eigh(&z)?;
/// assert!((e.values[0] + 1.0).abs() < 1e-10);
/// assert!((e.values[1] - 1.0).abs() < 1e-10);
/// # Ok::<(), nqpv_linalg::EighError>(())
/// ```
pub fn eigh(a: &CMat) -> Result<Eigh, EighError> {
    if !a.is_square() {
        return Err(EighError::NotSquare);
    }
    if !a.is_hermitian(1e-7) {
        return Err(EighError::NotHermitian);
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Eigh {
            values: vec![],
            vectors: CMat::zeros(0, 0),
        });
    }
    let mut m = a.hermitize();
    let mut v = CMat::identity(n);

    // Convergence threshold scales with the matrix magnitude.
    let scale = m.max_abs().max(1.0);
    let eps = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)].norm_sqr();
            }
        }
        if off.sqrt() <= eps * n as f64 {
            return Ok(finish(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let g = m[(p, q)];
                let gabs = g.abs();
                if gabs <= eps {
                    continue;
                }
                // Phase factor turning the (p,q) block real-symmetric.
                let phase = g.scale(1.0 / gabs); // e^{iφ}
                let alpha = m[(p, p)].re;
                let beta = m[(q, q)].re;
                // Classical real Jacobi rotation on the phased block.
                let tau = (beta - alpha) / (2.0 * gabs);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // U is identity except:
                //   U_pp = c        U_pq = s
                //   U_qp = -s·e^{-iφ}   U_qq = c·e^{-iφ}
                let e_m = phase.conj(); // e^{-iφ}
                let u_pp = cr(c);
                let u_pq = cr(s);
                let u_qp = e_m.scale(-s);
                let u_qq = e_m.scale(c);

                // A ← U† A U: first columns (A·U), then rows (U†·A).
                for i in 0..n {
                    let aip = m[(i, p)];
                    let aiq = m[(i, q)];
                    m[(i, p)] = aip * u_pp + aiq * u_qp;
                    m[(i, q)] = aip * u_pq + aiq * u_qq;
                }
                for j in 0..n {
                    let apj = m[(p, j)];
                    let aqj = m[(q, j)];
                    m[(p, j)] = u_pp.conj() * apj + u_qp.conj() * aqj;
                    m[(q, j)] = u_pq.conj() * apj + u_qq.conj() * aqj;
                }
                // Accumulate the eigenvector basis: V ← V·U.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip * u_pp + viq * u_qp;
                    v[(i, q)] = vip * u_pq + viq * u_qq;
                }
                // Numerically pin the annihilated entries.
                m[(p, q)] = Complex::ZERO;
                m[(q, p)] = Complex::ZERO;
            }
        }
        if m.has_nan() {
            return Err(EighError::NoConvergence);
        }
    }
    // One last check: accept if the residual is small anyway.
    let mut off = 0.0f64;
    for p in 0..n {
        for q in (p + 1)..n {
            off += m[(p, q)].norm_sqr();
        }
    }
    if off.sqrt() <= 1e-8 * scale * n as f64 {
        Ok(finish(m, v))
    } else {
        Err(EighError::NoConvergence)
    }
}

fn finish(m: CMat, v: CMat) -> Eigh {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    idx.sort_by(|&a, &b| {
        values_raw[a]
            .partial_cmp(&values_raw[b])
            .expect("NaN eigenvalue")
    });
    let values: Vec<f64> = idx.iter().map(|&i| values_raw[i]).collect();
    let vectors = CMat::from_fn(n, n, |i, j| v[(i, idx[j])]);
    Eigh { values, vectors }
}

/// Smallest eigenvalue of a hermitian matrix.
///
/// # Errors
///
/// Propagates [`EighError`] from [`eigh`].
pub fn min_eigenvalue(a: &CMat) -> Result<f64, EighError> {
    Ok(eigh(a)?.min())
}

/// Largest eigenvalue of a hermitian matrix.
///
/// # Errors
///
/// Propagates [`EighError`] from [`eigh`].
pub fn max_eigenvalue(a: &CMat) -> Result<f64, EighError> {
    Ok(eigh(a)?.max())
}

/// Hermitian square root `√A` of a positive semidefinite matrix.
///
/// Negative eigenvalues within `tol` of zero are clamped; larger negative
/// eigenvalues are an error because the square root would not be hermitian.
///
/// # Errors
///
/// Returns [`EighError::NotHermitian`] if `A` has an eigenvalue below `-tol`,
/// and propagates decomposition failures.
pub fn sqrtm_psd(a: &CMat, tol: f64) -> Result<CMat, EighError> {
    let e = eigh(a)?;
    if e.min() < -tol {
        return Err(EighError::NotHermitian);
    }
    let d: Vec<Complex> = e.values.iter().map(|&x| cr(x.max(0.0).sqrt())).collect();
    let v = &e.vectors;
    Ok(v.mul(&CMat::diag(&d)).mul(&v.adjoint()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;

    fn random_hermitian(n: usize, seed: &mut u64) -> CMat {
        // xorshift for deterministic pseudo-random tests without rand dep here
        let next = move |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            (*s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let g = CMat::from_fn(n, n, |_, _| c(next(seed), next(seed)));
        g.add_mat(&g.adjoint()).scale_re(0.5)
    }

    #[test]
    fn diagonalises_pauli_x() {
        let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let e = eigh(&x).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&x, 1e-10));
    }

    #[test]
    fn reconstructs_random_hermitians() {
        let mut seed = 0x12345678u64;
        for n in [1usize, 2, 3, 5, 8, 16] {
            let a = random_hermitian(n, &mut seed);
            let e = eigh(&a).unwrap();
            assert!(
                e.reconstruct().approx_eq(&a, 1e-8),
                "reconstruction failed for n={n}"
            );
            // eigenvectors unitary
            assert!(e.vectors.is_unitary(1e-8), "V not unitary for n={n}");
            // ascending order
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn eigenvectors_satisfy_eigen_equation() {
        let mut seed = 0xdeadbeefu64;
        let a = random_hermitian(6, &mut seed);
        let e = eigh(&a).unwrap();
        for k in 0..6 {
            let v = e.vector(k);
            let av = a.mul_vec(&v);
            let lv = v.scale(cr(e.values[k]));
            assert!(av.approx_eq(&lv, 1e-8), "eigpair {k} fails");
        }
    }

    #[test]
    fn complex_hermitian_with_phases() {
        // [[2, i],[-i, 2]] has eigenvalues 1 and 3.
        let a = CMat::from_vec(
            2,
            2,
            vec![c(2.0, 0.0), c(0.0, 1.0), c(0.0, -1.0), c(2.0, 0.0)],
        );
        let e = eigh(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_hermitian() {
        let a = CMat::from_real(2, 2, &[0.0, 1.0, 0.0, 0.0]);
        assert_eq!(eigh(&a).unwrap_err(), EighError::NotHermitian);
        let b = CMat::zeros(2, 3);
        assert_eq!(eigh(&b).unwrap_err(), EighError::NotSquare);
    }

    #[test]
    fn eigenprojectors_sum_to_identity() {
        let mut seed = 77u64;
        let a = random_hermitian(5, &mut seed);
        let e = eigh(&a).unwrap();
        let mut sum = CMat::zeros(5, 5);
        for lam in e.distinct_values(1e-8) {
            sum += &e.eigenprojector(lam, 1e-8);
        }
        assert!(sum.approx_eq(&CMat::identity(5), 1e-7));
    }

    #[test]
    fn sqrtm_squares_back() {
        let mut seed = 31u64;
        let g = random_hermitian(4, &mut seed);
        let psd = g.mul(&g); // G² ⪰ 0 for hermitian G
        let r = sqrtm_psd(&psd, 1e-9).unwrap();
        assert!(r.mul(&r).approx_eq(&psd, 1e-7));
        assert!(r.is_hermitian(1e-8));
    }

    #[test]
    fn degenerate_spectrum() {
        let a = CMat::identity(4).scale_re(2.5);
        let e = eigh(&a).unwrap();
        for &v in &e.values {
            assert!((v - 2.5).abs() < 1e-12);
        }
        assert_eq!(e.distinct_values(1e-9), vec![2.5]);
    }

    #[test]
    fn zero_dimensional() {
        let a = CMat::zeros(0, 0);
        let e = eigh(&a).unwrap();
        assert!(e.values.is_empty());
    }
}
