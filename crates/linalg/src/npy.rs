//! Minimal NumPy `.npy` reader/writer for operator matrices.
//!
//! The original NQPV tool expects unitaries, measurements and loop invariants
//! to be "input by the user as numpy matrices" (paper Sec. 6.1, e.g.
//! `def invN := load "invN.npy" end`). This module reproduces that workflow:
//! version-1.0 `.npy` files holding little-endian `complex128` (`<c16`) or
//! `float64` (`<f8`) arrays of rank 1 or 2, C-order.

use crate::complex::Complex;
use crate::matrix::CMat;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Errors produced while reading or writing `.npy` files.
#[derive(Debug)]
pub enum NpyError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `\x93NUMPY` magic.
    BadMagic,
    /// Unsupported format version (only 1.0 is handled).
    BadVersion(u8, u8),
    /// Header dictionary could not be parsed.
    BadHeader(String),
    /// Dtype other than `<c16` / `<f8`.
    UnsupportedDtype(String),
    /// Fortran-order arrays are not supported.
    FortranOrder,
    /// Rank other than 1 or 2.
    UnsupportedRank(usize),
    /// Payload shorter than the shape requires.
    Truncated,
}

impl fmt::Display for NpyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpyError::Io(e) => write!(f, "npy i/o error: {e}"),
            NpyError::BadMagic => write!(f, "not an npy file (bad magic)"),
            NpyError::BadVersion(a, b) => write!(f, "unsupported npy version {a}.{b}"),
            NpyError::BadHeader(h) => write!(f, "malformed npy header: {h}"),
            NpyError::UnsupportedDtype(d) => write!(f, "unsupported npy dtype {d}"),
            NpyError::FortranOrder => write!(f, "fortran-order npy arrays are unsupported"),
            NpyError::UnsupportedRank(r) => write!(f, "unsupported npy rank {r}"),
            NpyError::Truncated => write!(f, "npy payload shorter than header shape"),
        }
    }
}

impl std::error::Error for NpyError {}

impl From<std::io::Error> for NpyError {
    fn from(e: std::io::Error) -> Self {
        NpyError::Io(e)
    }
}

const MAGIC: &[u8; 6] = b"\x93NUMPY";

/// Reads a complex matrix from `.npy` bytes.
///
/// Rank-1 arrays of length `n` are returned as `n × 1` column matrices;
/// `<f8` data is promoted to complex.
///
/// # Errors
///
/// Returns [`NpyError`] on malformed input; see its variants.
pub fn read_matrix_bytes(bytes: &[u8]) -> Result<CMat, NpyError> {
    if bytes.len() < 10 || &bytes[..6] != MAGIC {
        return Err(NpyError::BadMagic);
    }
    let (major, minor) = (bytes[6], bytes[7]);
    if major != 1 {
        return Err(NpyError::BadVersion(major, minor));
    }
    let header_len = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
    if bytes.len() < 10 + header_len {
        return Err(NpyError::Truncated);
    }
    let header = std::str::from_utf8(&bytes[10..10 + header_len])
        .map_err(|_| NpyError::BadHeader("non-utf8 header".into()))?;
    let descr =
        extract_quoted(header, "descr").ok_or_else(|| NpyError::BadHeader(header.to_string()))?;
    let fortran = extract_bool(header, "fortran_order")
        .ok_or_else(|| NpyError::BadHeader(header.to_string()))?;
    if fortran {
        return Err(NpyError::FortranOrder);
    }
    let shape = extract_shape(header).ok_or_else(|| NpyError::BadHeader(header.to_string()))?;
    let (rows, cols) = match shape.len() {
        1 => (shape[0], 1),
        2 => (shape[0], shape[1]),
        r => return Err(NpyError::UnsupportedRank(r)),
    };
    let count = rows * cols;
    let payload = &bytes[10 + header_len..];
    let data = match descr.as_str() {
        "<c16" | "|c16" | "=c16" => {
            if payload.len() < count * 16 {
                return Err(NpyError::Truncated);
            }
            (0..count)
                .map(|k| {
                    let re = f64::from_le_bytes(payload[k * 16..k * 16 + 8].try_into().unwrap());
                    let im =
                        f64::from_le_bytes(payload[k * 16 + 8..k * 16 + 16].try_into().unwrap());
                    Complex::new(re, im)
                })
                .collect::<Vec<_>>()
        }
        "<f8" | "|f8" | "=f8" => {
            if payload.len() < count * 8 {
                return Err(NpyError::Truncated);
            }
            (0..count)
                .map(|k| {
                    Complex::real(f64::from_le_bytes(
                        payload[k * 8..k * 8 + 8].try_into().unwrap(),
                    ))
                })
                .collect::<Vec<_>>()
        }
        other => return Err(NpyError::UnsupportedDtype(other.to_string())),
    };
    Ok(CMat::from_vec(rows, cols, data))
}

/// Reads a complex matrix from a `.npy` file.
///
/// # Errors
///
/// Returns [`NpyError`] on I/O failure or malformed content.
pub fn read_matrix<P: AsRef<Path>>(path: P) -> Result<CMat, NpyError> {
    let mut buf = Vec::new();
    fs::File::open(path)?.read_to_end(&mut buf)?;
    read_matrix_bytes(&buf)
}

/// Serialises a matrix as version-1.0 `.npy` bytes with dtype `<c16`.
pub fn write_matrix_bytes(m: &CMat) -> Vec<u8> {
    let dict = format!(
        "{{'descr': '<c16', 'fortran_order': False, 'shape': ({}, {}), }}",
        m.rows(),
        m.cols()
    );
    // Pad with spaces so that 10 + len is a multiple of 64, ending in \n.
    let mut header = dict.into_bytes();
    let total = 10 + header.len() + 1;
    let pad = (64 - total % 64) % 64;
    header.extend(std::iter::repeat_n(b' ', pad));
    header.push(b'\n');
    let mut out = Vec::with_capacity(10 + header.len() + m.rows() * m.cols() * 16);
    out.extend_from_slice(MAGIC);
    out.push(1);
    out.push(0);
    out.extend_from_slice(&(header.len() as u16).to_le_bytes());
    out.extend_from_slice(&header);
    for z in m.as_slice() {
        out.extend_from_slice(&z.re.to_le_bytes());
        out.extend_from_slice(&z.im.to_le_bytes());
    }
    out
}

/// Writes a matrix to a `.npy` file with dtype `<c16`.
///
/// # Errors
///
/// Returns [`NpyError::Io`] on filesystem failure.
pub fn write_matrix<P: AsRef<Path>>(path: P, m: &CMat) -> Result<(), NpyError> {
    let bytes = write_matrix_bytes(m);
    fs::File::create(path)?.write_all(&bytes)?;
    Ok(())
}

fn extract_quoted(header: &str, key: &str) -> Option<String> {
    let kpos = header.find(&format!("'{key}'"))?;
    let rest = &header[kpos + key.len() + 2..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let quote = rest.chars().next()?;
    if quote != '\'' && quote != '"' {
        return None;
    }
    let end = rest[1..].find(quote)?;
    Some(rest[1..1 + end].to_string())
}

fn extract_bool(header: &str, key: &str) -> Option<bool> {
    let kpos = header.find(&format!("'{key}'"))?;
    let rest = &header[kpos + key.len() + 2..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    if rest.starts_with("True") {
        Some(true)
    } else if rest.starts_with("False") {
        Some(false)
    } else {
        None
    }
}

fn extract_shape(header: &str) -> Option<Vec<usize>> {
    let kpos = header.find("'shape'")?;
    let rest = &header[kpos + 7..];
    let open = rest.find('(')?;
    let close = rest[open..].find(')')? + open;
    let inner = &rest[open + 1..close];
    let mut dims = Vec::new();
    for part in inner.split(',') {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        dims.push(p.parse::<usize>().ok()?);
    }
    if dims.is_empty() {
        // 0-d scalar array: treat as 1×1.
        dims.push(1);
    }
    Some(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;

    #[test]
    fn round_trip_complex_matrix() {
        let m = CMat::from_fn(3, 4, |i, j| c(i as f64 + 0.5, j as f64 - 1.25));
        let bytes = write_matrix_bytes(&m);
        let back = read_matrix_bytes(&bytes).unwrap();
        assert!(back.approx_eq(&m, 0.0_f64.max(1e-15)));
    }

    #[test]
    fn header_is_64_byte_aligned() {
        let m = CMat::identity(2);
        let bytes = write_matrix_bytes(&m);
        let header_len = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
        assert_eq!((10 + header_len) % 64, 0);
        assert_eq!(bytes[10 + header_len - 1], b'\n');
    }

    #[test]
    fn reads_real_f8_files() {
        // Hand-construct an <f8 file for a 2×2 identity.
        let dict = "{'descr': '<f8', 'fortran_order': False, 'shape': (2, 2), }";
        let mut header = dict.as_bytes().to_vec();
        let total = 10 + header.len() + 1;
        let pad = (64 - total % 64) % 64;
        header.extend(std::iter::repeat_n(b' ', pad));
        header.push(b'\n');
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&[1, 0]);
        bytes.extend_from_slice(&(header.len() as u16).to_le_bytes());
        bytes.extend_from_slice(&header);
        for v in [1.0f64, 0.0, 0.0, 1.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let m = read_matrix_bytes(&bytes).unwrap();
        assert!(m.approx_eq(&CMat::identity(2), 1e-15));
    }

    #[test]
    fn rank1_becomes_column() {
        let dict = "{'descr': '<f8', 'fortran_order': False, 'shape': (3,), }";
        let mut header = dict.as_bytes().to_vec();
        let total = 10 + header.len() + 1;
        let pad = (64 - total % 64) % 64;
        header.extend(std::iter::repeat_n(b' ', pad));
        header.push(b'\n');
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&[1, 0]);
        bytes.extend_from_slice(&(header.len() as u16).to_le_bytes());
        bytes.extend_from_slice(&header);
        for v in [1.0f64, 2.0, 3.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let m = read_matrix_bytes(&bytes).unwrap();
        assert_eq!((m.rows(), m.cols()), (3, 1));
        assert!((m[(2, 0)].re - 3.0).abs() < 1e-15);
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            read_matrix_bytes(b"not an npy"),
            Err(NpyError::BadMagic)
        ));
        let mut bad_version = write_matrix_bytes(&CMat::identity(2));
        bad_version[6] = 3;
        assert!(matches!(
            read_matrix_bytes(&bad_version),
            Err(NpyError::BadVersion(3, 0))
        ));
        let good = write_matrix_bytes(&CMat::identity(2));
        let truncated = &good[..good.len() - 8];
        assert!(matches!(
            read_matrix_bytes(truncated),
            Err(NpyError::Truncated)
        ));
    }

    #[test]
    fn fortran_order_rejected() {
        let dict = "{'descr': '<c16', 'fortran_order': True, 'shape': (1, 1), }";
        let mut header = dict.as_bytes().to_vec();
        let total = 10 + header.len() + 1;
        let pad = (64 - total % 64) % 64;
        header.extend(std::iter::repeat_n(b' ', pad));
        header.push(b'\n');
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&[1, 0]);
        bytes.extend_from_slice(&(header.len() as u16).to_le_bytes());
        bytes.extend_from_slice(&header);
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_matrix_bytes(&bytes),
            Err(NpyError::FortranOrder)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("nqpv_npy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("op.npy");
        let m = CMat::from_fn(4, 4, |i, j| c((i * 7 + j) as f64, -(j as f64)));
        write_matrix(&path, &m).unwrap();
        let back = read_matrix(&path).unwrap();
        assert!(back.approx_eq(&m, 1e-15));
        std::fs::remove_file(&path).ok();
    }
}
