//! # nqpv-linalg
//!
//! Complex dense linear algebra substrate for the NQPV verification stack
//! (the Rust reproduction of *Verification of Nondeterministic Quantum
//! Programs*, ASPLOS '23).
//!
//! The paper's prototype leans on NumPy for "powerful matrix manipulation
//! capabilities" (Sec. 6); this crate provides the equivalent foundation
//! from scratch:
//!
//! * [`Complex`] scalars and the [`CMat`]/[`CVec`] dense types;
//! * hermitian eigendecomposition ([`eigh`]) via the cyclic complex Jacobi
//!   method, spectral projectors and PSD square roots;
//! * [`cholesky`]-based positive-semidefiniteness and Löwner-order tests
//!   ([`is_psd`], [`lowner_le`]) — the eigenvalue test of paper Sec. 6.3;
//! * qubit-register tensor machinery: [`embed`]dings (cylinder extensions),
//!   fast in-place gate application, [`partial_trace`], qubit permutations;
//! * a NumPy [`npy`] reader/writer so operators can be exchanged with the
//!   original Python artifact.
//!
//! # Examples
//!
//! ```
//! use nqpv_linalg::{CMat, embed, eigh, lowner_le};
//!
//! // Build X ⊗ I, check its spectrum is {-1, -1, 1, 1}.
//! let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
//! let xi = embed(&x, &[0], 2);
//! let e = eigh(&xi)?;
//! assert!((e.values[0] + 1.0).abs() < 1e-10 && (e.values[3] - 1.0).abs() < 1e-10);
//!
//! // Löwner order: X⊗I ⊑ I.
//! assert!(lowner_le(&xi, &CMat::identity(4), 1e-9));
//! # Ok::<(), nqpv_linalg::EighError>(())
//! ```

mod cholesky;
mod complex;
mod eigen;
mod factor;
mod matrix;
pub mod npy;
pub mod par;
mod screen;
mod tensor;

pub use cholesky::{
    cholesky, is_partial_density, is_predicate, is_psd, is_psd_pivoted, lowner_le, pivoted_cholesky,
};
pub use complex::{c, cr, Complex, TOL};
pub use eigen::{eigh, max_eigenvalue, min_eigenvalue, sqrtm_psd, Eigh, EighError};
pub use factor::{
    canonical_factor, embed_factor, factor_recompress, gram, hconcat, low_rank_factor,
    CANONICAL_CLUSTER_RTOL, FACTOR_RANK_RTOL,
};
pub use matrix::{CMat, CVec};
pub use npy::{read_matrix, read_matrix_bytes, write_matrix, write_matrix_bytes, NpyError};
pub use screen::{screen_psd_f32, ScreenVerdict};
pub use tensor::{
    adjoint_conjugate_gate, apply_gate_columns, apply_gate_left, apply_gate_right_adjoint,
    apply_gate_vec, bit_of, conjugate_gate, deposit_bits, embed, index_of_bits, partial_trace,
    permute_qubits,
};
