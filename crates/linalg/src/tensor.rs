//! Qubit-register tensor operations: embeddings, fast gate application,
//! qubit permutations and partial traces.
//!
//! Convention: a register of `n` qubits is indexed `0..n`, and the
//! computational-basis index of the full space puts **qubit 0 in the most
//! significant bit**, so `kron(A, B)` acts with `A` on lower-numbered qubits.
//! `bit_of(i, q, n) = (i >> (n-1-q)) & 1`.

use crate::complex::Complex;
use crate::matrix::{CMat, CVec};
use crate::par::{self, SharedMut};

/// Value of qubit `q`'s bit inside basis index `i` of an `n`-qubit space.
#[inline]
pub fn bit_of(i: usize, q: usize, n: usize) -> usize {
    (i >> (n - 1 - q)) & 1
}

/// Basis index of an `n`-qubit register given one bit per qubit
/// (`bits[0]` is qubit 0).
///
/// # Panics
///
/// Panics if any entry is not 0 or 1.
pub fn index_of_bits(bits: &[usize]) -> usize {
    let mut i = 0usize;
    for &b in bits {
        assert!(b <= 1, "bits must be 0 or 1");
        i = (i << 1) | b;
    }
    i
}

/// Checks that `positions` are distinct and within `0..n`.
fn validate_positions(positions: &[usize], n: usize) {
    for (t, &p) in positions.iter().enumerate() {
        assert!(p < n, "qubit position {p} out of range for {n} qubits");
        for &q in &positions[..t] {
            assert_ne!(p, q, "duplicate qubit position {p}");
        }
    }
}

/// Embeds a `k`-qubit operator into the full `n`-qubit space, acting on
/// `positions` (in order: the operator's qubit `t` is register qubit
/// `positions[t]`) and identity elsewhere. This is the cylinder extension
/// used implicitly throughout the paper.
///
/// # Panics
///
/// Panics if the operator is not `2^k × 2^k` or positions are invalid.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{CMat, embed};
/// let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
/// // X on qubit 1 of 2 = I ⊗ X
/// let e = embed(&x, &[1], 2);
/// let expect = CMat::identity(2).kron(&x);
/// assert!(e.approx_eq(&expect, 1e-12));
/// ```
pub fn embed(op: &CMat, positions: &[usize], n: usize) -> CMat {
    let k = positions.len();
    let dk = 1usize << k;
    assert_eq!(op.rows(), dk, "operator acts on {k} qubits");
    assert_eq!(op.cols(), dk, "operator acts on {k} qubits");
    validate_positions(positions, n);
    let dn = 1usize << n;
    let rest_mask: usize = {
        let mut m = dn - 1;
        for &p in positions {
            m &= !(1usize << (n - 1 - p));
        }
        m
    };
    let mut out = CMat::zeros(dn, dn);
    for i in 0..dn {
        let xi = extract_sub_index(i, positions, n);
        let rest = i & rest_mask;
        for xj in 0..dk {
            let g = op[(xi, xj)];
            // Skip exact (±0) zeros only — see `Complex::is_exact_zero`.
            if g.is_exact_zero() {
                continue;
            }
            let j = rest | deposit_sub_index(xj, positions, n);
            out[(i, j)] = g;
        }
    }
    out
}

/// Extracts the sub-index of `positions` bits from full index `i`.
#[inline]
fn extract_sub_index(i: usize, positions: &[usize], n: usize) -> usize {
    let mut x = 0usize;
    for &p in positions {
        x = (x << 1) | bit_of(i, p, n);
    }
    x
}

/// Deposits sub-index `x` into the `positions` bits of an otherwise-zero
/// full index (`x`'s most significant bit maps to `positions[0]`). The
/// public inverse of per-qubit [`bit_of`] extraction, used by the
/// low-rank factor embeddings.
#[inline]
pub fn deposit_bits(x: usize, positions: &[usize], n: usize) -> usize {
    deposit_sub_index(x, positions, n)
}

/// Deposits sub-index `x` into the `positions` bits of an otherwise-zero
/// full index.
#[inline]
fn deposit_sub_index(x: usize, positions: &[usize], n: usize) -> usize {
    let k = positions.len();
    let mut i = 0usize;
    for (t, &p) in positions.iter().enumerate() {
        let b = (x >> (k - 1 - t)) & 1;
        i |= b << (n - 1 - p);
    }
    i
}

/// Precomputed index plan for applying a `k`-qubit gate inside an
/// `n`-qubit space: the "rest" qubit shifts and the sub-index deposits.
/// Building it once per gate application (instead of once per matrix row,
/// as a naive loop would) keeps the strided kernels allocation-free on
/// the hot path.
struct GatePlan {
    dk: usize,
    rest_count: usize,
    rest_shifts: Vec<usize>,
    sub_deposits: Vec<usize>,
}

impl GatePlan {
    fn new(positions: &[usize], n: usize) -> GatePlan {
        let k = positions.len();
        let dk = 1usize << k;
        let dn = 1usize << n;
        // Positions of the non-acted ("rest") qubits, as bit shifts.
        let mut rest_shifts: Vec<usize> = Vec::with_capacity(n - k);
        'outer: for q in 0..n {
            for &p in positions {
                if p == q {
                    continue 'outer;
                }
            }
            rest_shifts.push(n - 1 - q);
        }
        debug_assert_eq!(rest_shifts.len(), n - k);
        let sub_deposits: Vec<usize> = (0..dk)
            .map(|x| deposit_sub_index(x, positions, n))
            .collect();
        GatePlan {
            dk,
            rest_count: dn >> k,
            rest_shifts,
            sub_deposits,
        }
    }

    /// Applies `gate` to the virtual vector `v[t] = data[offset + t·stride]`,
    /// `t ∈ 0..2^n`, in place, using `gathered` as scratch (length `dk`).
    fn run(
        &self,
        gate: &CMat,
        data: &mut [Complex],
        offset: usize,
        stride: usize,
        gathered: &mut [Complex],
    ) {
        // SAFETY: the unique borrow guarantees validity and exclusivity.
        unsafe {
            self.run_raw(
                gate,
                data.as_mut_ptr(),
                data.len(),
                offset,
                stride,
                gathered,
            )
        }
    }

    /// [`GatePlan::run`] over a raw element pointer, so the threaded
    /// sweeps can share one buffer across chunks with provably disjoint
    /// index sets (each virtual vector touches `offset + t·stride` only —
    /// distinct offsets with a common stride never collide).
    ///
    /// The floating-point operations and their order are exactly those of
    /// the serial kernel: every output element is gathered, multiplied and
    /// scattered within one call, so results are bitwise identical for
    /// every chunking.
    ///
    /// # Safety
    ///
    /// `data` must be valid for reads and writes of `len` elements for the
    /// duration of the call, and the index set this call touches must be
    /// disjoint from that of every concurrent call on the same buffer.
    unsafe fn run_raw(
        &self,
        gate: &CMat,
        data: *mut Complex,
        len: usize,
        offset: usize,
        stride: usize,
        gathered: &mut [Complex],
    ) {
        debug_assert_eq!(gate.rows(), self.dk);
        for r in 0..self.rest_count {
            // Spread the bits of r into the rest positions.
            let mut base = 0usize;
            for (bi, &sh) in self.rest_shifts.iter().enumerate() {
                let b = (r >> (self.rest_shifts.len() - 1 - bi)) & 1;
                base |= b << sh;
            }
            for (x, g) in gathered.iter_mut().enumerate().take(self.dk) {
                let idx = offset + (base | self.sub_deposits[x]) * stride;
                debug_assert!(idx < len);
                *g = *data.add(idx);
            }
            for x in 0..self.dk {
                let mut acc = Complex::ZERO;
                for y in 0..self.dk {
                    acc += gate[(x, y)] * gathered[y];
                }
                let idx = offset + (base | self.sub_deposits[x]) * stride;
                debug_assert!(idx < len);
                *data.add(idx) = acc;
            }
        }
    }

    /// Per-virtual-vector sweep cost estimate (gather + `dk×dk` multiply
    /// per rest block), for the backend's serial/parallel decision.
    fn sweep_work(&self) -> usize {
        self.rest_count * self.dk * (self.dk + 1)
    }
}

/// Runs `plan` on the virtual vectors `offsets(j), stride` for every
/// `j ∈ 0..count`, chunked across the kernel backend. Distinct offsets
/// with a common stride address disjoint index sets, so chunks never
/// overlap; each chunk brings its own scratch buffer.
fn sweep_strided(
    plan: &GatePlan,
    gate: &CMat,
    data: &mut [Complex],
    count: usize,
    stride: usize,
    offset_of: impl Fn(usize) -> usize + Sync,
) {
    let shared = SharedMut::new(data);
    par::sweep(count, plan.sweep_work(), |range| {
        let mut gathered = vec![Complex::ZERO; plan.dk];
        for j in range {
            // SAFETY: `shared` wraps a live unique borrow; chunk `j`
            // ranges are disjoint and each `j` touches only indices
            // `offset_of(j) + t·stride`, distinct across `j`.
            unsafe {
                plan.run_raw(
                    gate,
                    shared.ptr(),
                    shared.len(),
                    offset_of(j),
                    stride,
                    &mut gathered,
                )
            }
        }
    });
}

/// Applies a `k`-qubit gate to a `2^n` state vector in place:
/// `v ← G_S · v`.
///
/// # Panics
///
/// Panics on dimension mismatches or invalid positions.
pub fn apply_gate_vec(gate: &CMat, positions: &[usize], n: usize, v: &mut CVec) {
    assert_eq!(v.dim(), 1usize << n, "state vector dimension mismatch");
    validate_positions(positions, n);
    assert_eq!(gate.rows(), 1usize << positions.len(), "gate size mismatch");
    let plan = GatePlan::new(positions, n);
    let mut gathered = vec![Complex::ZERO; plan.dk];
    plan.run(gate, v.as_mut_slice(), 0, 1, &mut gathered);
}

/// Left-multiplies an embedded gate into every **column** of a `2^n × r`
/// matrix in place: `V ← G_S · V`. The columns are independent state
/// vectors, so this is the tall-skinny-factor form of [`apply_gate_left`]
/// (which requires a square matrix): `O(2ⁿ·2ᵏ·r)` — for a low-rank factor
/// this replaces the `O(8ⁿ)` dense conjugation of the operator it
/// represents. Columns are swept in parallel chunks when
/// [`crate::par::kernel_threads`] > 1 and the sweep is large enough;
/// results are bitwise identical for every thread count.
pub fn apply_gate_columns(gate: &CMat, positions: &[usize], n: usize, v: &mut CMat) {
    let d = 1usize << n;
    assert_eq!(v.rows(), d, "factor height mismatch");
    validate_positions(positions, n);
    assert_eq!(gate.rows(), 1usize << positions.len(), "gate size mismatch");
    let r = v.cols();
    if r == 0 {
        return;
    }
    let plan = GatePlan::new(positions, n);
    // Column j occupies indices j + t·r (t < d): disjoint across columns.
    sweep_strided(&plan, gate, v.as_mut_slice(), r, r, |j| j);
}

/// Left-multiplies an embedded gate into a `2^n × 2^n` matrix in place:
/// `M ← G_S · M`. Column-parallel like [`apply_gate_columns`].
pub fn apply_gate_left(gate: &CMat, positions: &[usize], n: usize, m: &mut CMat) {
    let d = 1usize << n;
    assert_eq!(m.rows(), d, "matrix dimension mismatch");
    assert_eq!(m.cols(), d, "matrix dimension mismatch");
    validate_positions(positions, n);
    let plan = GatePlan::new(positions, n);
    sweep_strided(&plan, gate, m.as_mut_slice(), d, d, |j| j);
}

/// Right-multiplies the adjoint of an embedded gate into a matrix in place:
/// `M ← M · G_S†`. Row-parallel: row `i` occupies the contiguous range
/// `i·d .. (i+1)·d`, disjoint across rows.
pub fn apply_gate_right_adjoint(gate: &CMat, positions: &[usize], n: usize, m: &mut CMat) {
    let d = 1usize << n;
    assert_eq!(m.rows(), d, "matrix dimension mismatch");
    assert_eq!(m.cols(), d, "matrix dimension mismatch");
    validate_positions(positions, n);
    // row · G† viewed as a left action of conj(G) on the row vector.
    let gc = gate.conj();
    let plan = GatePlan::new(positions, n);
    sweep_strided(&plan, &gc, m.as_mut_slice(), d, 1, |i| i * d);
}

/// Schrödinger-picture conjugation `M ← G_S · M · G_S†` without
/// materialising the `2^n` embedding (e.g. `UρU†`). One index plan is
/// shared by the left and right sweeps; each sweep runs column- (then
/// row-)parallel with a barrier between them.
pub fn conjugate_gate(gate: &CMat, positions: &[usize], n: usize, m: &CMat) -> CMat {
    let d = 1usize << n;
    assert_eq!(m.rows(), d, "matrix dimension mismatch");
    assert_eq!(m.cols(), d, "matrix dimension mismatch");
    validate_positions(positions, n);
    let mut out = m.clone();
    let plan = GatePlan::new(positions, n);
    sweep_strided(&plan, gate, out.as_mut_slice(), d, d, |j| j);
    let gc = gate.conj();
    sweep_strided(&plan, &gc, out.as_mut_slice(), d, 1, |i| i * d);
    out
}

/// Heisenberg-picture conjugation `M ← G_S† · M · G_S` (e.g. `U†MU`,
/// the (Unit) rule of the proof system).
pub fn adjoint_conjugate_gate(gate: &CMat, positions: &[usize], n: usize, m: &CMat) -> CMat {
    let ga = gate.adjoint();
    conjugate_gate(&ga, positions, n, m)
}

/// Partial trace over the qubits in `traced`, returning an operator on the
/// remaining qubits (kept in their original relative order).
///
/// # Panics
///
/// Panics on invalid positions or dimension mismatch.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{CMat, CVec, partial_trace};
/// // Bell state (|00⟩+|11⟩)/√2: tracing either qubit leaves I/2.
/// let mut bell = CVec::zeros(4);
/// bell[0] = nqpv_linalg::c(std::f64::consts::FRAC_1_SQRT_2, 0.0);
/// bell[3] = nqpv_linalg::c(std::f64::consts::FRAC_1_SQRT_2, 0.0);
/// let rho = bell.projector();
/// let reduced = partial_trace(&rho, &[1], 2);
/// assert!(reduced.approx_eq(&CMat::identity(2).scale_re(0.5), 1e-12));
/// ```
pub fn partial_trace(m: &CMat, traced: &[usize], n: usize) -> CMat {
    let d = 1usize << n;
    assert_eq!(m.rows(), d, "matrix dimension mismatch");
    assert_eq!(m.cols(), d, "matrix dimension mismatch");
    validate_positions(traced, n);
    let kept: Vec<usize> = (0..n).filter(|q| !traced.contains(q)).collect();
    let nk = kept.len();
    let dk = 1usize << nk;
    let dt = 1usize << traced.len();
    let mut out = CMat::zeros(dk, dk);
    for a in 0..dk {
        let ia = deposit_sub_index(a, &kept, n);
        for b in 0..dk {
            let ib = deposit_sub_index(b, &kept, n);
            let mut acc = Complex::ZERO;
            for t in 0..dt {
                let it = deposit_sub_index(t, traced, n);
                acc += m[(ia | it, ib | it)];
            }
            out[(a, b)] = acc;
        }
    }
    out
}

/// Reorders the tensor factors of an `n`-qubit operator: in the result, the
/// qubit at position `q` is the input's qubit `perm[q]`.
///
/// # Panics
///
/// Panics unless `perm` is a permutation of `0..n`.
pub fn permute_qubits(m: &CMat, perm: &[usize], n: usize) -> CMat {
    assert_eq!(perm.len(), n, "permutation length mismatch");
    validate_positions(perm, n);
    let d = 1usize << n;
    assert_eq!(m.rows(), d, "matrix dimension mismatch");
    assert_eq!(m.cols(), d, "matrix dimension mismatch");
    let map = |i: usize| -> usize {
        let mut j = 0usize;
        for (q, &src) in perm.iter().enumerate() {
            j |= bit_of(i, src, n) << (n - 1 - q);
        }
        j
    };
    // out[map(i)][map(j)] = m[i][j] ⇒ out[i'][j'] = m[inv(i')][inv(j')];
    // build forward to avoid inverting.
    let mut out = CMat::zeros(d, d);
    for i in 0..d {
        let mi = map(i);
        for j in 0..d {
            out[(mi, map(j))] = m[(i, j)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c, cr, TOL};

    fn x() -> CMat {
        CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn h() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_real(2, 2, &[s, s, s, -s])
    }

    fn cx() -> CMat {
        CMat::from_real(
            4,
            4,
            &[
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 0.0, 1.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
        )
    }

    #[test]
    fn embed_matches_kron() {
        // X on qubit 0 of 3 = X ⊗ I ⊗ I
        let e = embed(&x(), &[0], 3);
        let expect = x().kron(&CMat::identity(4));
        assert!(e.approx_eq(&expect, TOL));
        // X on qubit 2 of 3 = I ⊗ I ⊗ X
        let e2 = embed(&x(), &[2], 3);
        let expect2 = CMat::identity(4).kron(&x());
        assert!(e2.approx_eq(&expect2, TOL));
    }

    #[test]
    fn embed_two_qubit_gate_ordered() {
        // CX with control q0, target q1 on 2 qubits is CX itself.
        let e = embed(&cx(), &[0, 1], 2);
        assert!(e.approx_eq(&cx(), TOL));
    }

    #[test]
    fn embed_reversed_positions_swaps_roles() {
        // CX on positions [1,0]: control is qubit 1, target qubit 0.
        let e = embed(&cx(), &[1, 0], 2);
        // |01⟩ (q0=0,q1=1) → |11⟩
        let v = CVec::basis(4, 0b01);
        let out = e.mul_vec(&v);
        assert!(out[0b11].approx_eq(Complex::ONE, TOL));
        // |10⟩ stays (control q1 = 0)
        let v2 = CVec::basis(4, 0b10);
        let out2 = e.mul_vec(&v2);
        assert!(out2[0b10].approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn apply_gate_vec_matches_embed() {
        let n = 4;
        let mut state = CVec::zeros(1 << n);
        // Superposition seed.
        for i in 0..(1 << n) {
            state[i] = c((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos());
        }
        let norm = state.norm();
        let state = state.scale(cr(1.0 / norm));
        for positions in [vec![0], vec![3], vec![1]] {
            let mut fast = state.clone();
            apply_gate_vec(&h(), &positions, n, &mut fast);
            let slow = embed(&h(), &positions, n).mul_vec(&state);
            assert!(fast.approx_eq(&slow, 1e-10), "positions {positions:?}");
        }
        // Two-qubit, non-adjacent, reversed order.
        for positions in [vec![0, 2], vec![3, 1], vec![2, 3]] {
            let mut fast = state.clone();
            apply_gate_vec(&cx(), &positions, n, &mut fast);
            let slow = embed(&cx(), &positions, n).mul_vec(&state);
            assert!(fast.approx_eq(&slow, 1e-10), "positions {positions:?}");
        }
    }

    #[test]
    fn conjugate_gate_matches_explicit() {
        let n = 3;
        let d = 1 << n;
        let m = CMat::from_fn(d, d, |i, j| {
            c((i + 2 * j) as f64 * 0.1, (i as f64 - j as f64) * 0.05)
        });
        let m = m.add_mat(&m.adjoint()).scale_re(0.5);
        for positions in [vec![1], vec![0, 2], vec![2, 0]] {
            let g = if positions.len() == 1 { h() } else { cx() };
            let big = embed(&g, &positions, n);
            let expect = big.conjugate(&m);
            let fast = conjugate_gate(&g, &positions, n, &m);
            assert!(fast.approx_eq(&expect, 1e-10), "positions {positions:?}");
            let expect_adj = big.adjoint_conjugate(&m);
            let fast_adj = adjoint_conjugate_gate(&g, &positions, n, &m);
            assert!(
                fast_adj.approx_eq(&expect_adj, 1e-10),
                "positions {positions:?}"
            );
        }
    }

    #[test]
    fn apply_gate_columns_matches_embed_per_column() {
        let n = 3;
        let d = 1 << n;
        let v = CMat::from_fn(d, 3, |i, j| {
            c((i + j) as f64 * 0.2, (i as f64 - j as f64) * 0.1)
        });
        for positions in [vec![1usize], vec![0, 2], vec![2, 0]] {
            let g = if positions.len() == 1 { h() } else { cx() };
            let mut fast = v.clone();
            apply_gate_columns(&g, &positions, n, &mut fast);
            let big = embed(&g, &positions, n);
            for j in 0..3 {
                let slow = big.mul_vec(&v.col(j));
                for i in 0..d {
                    assert!(
                        fast[(i, j)].approx_eq(slow.as_slice()[i], 1e-10),
                        "positions {positions:?} col {j}"
                    );
                }
            }
        }
        // Zero-width factors are a no-op.
        let mut empty = CMat::zeros(d, 0);
        apply_gate_columns(&h(), &[0], n, &mut empty);
        assert_eq!(empty.cols(), 0);
    }

    #[test]
    fn partial_trace_of_product_state() {
        // ρ = |0⟩⟨0| ⊗ |+⟩⟨+|; tracing qubit 1 gives |0⟩⟨0|.
        let p0 = CVec::basis(2, 0).projector();
        let plus = CVec::new(vec![cr(std::f64::consts::FRAC_1_SQRT_2); 2]).projector();
        let rho = p0.kron(&plus);
        let r = partial_trace(&rho, &[1], 2);
        assert!(r.approx_eq(&p0, TOL));
        let r2 = partial_trace(&rho, &[0], 2);
        assert!(r2.approx_eq(&plus, TOL));
    }

    #[test]
    fn partial_trace_preserves_trace() {
        let n = 3;
        let d = 1 << n;
        let g = CMat::from_fn(d, d, |i, j| c((i * j) as f64 * 0.01, (i + j) as f64 * 0.02));
        let rho = g.mul(&g.adjoint()); // PSD
        let t = rho.trace_re();
        let r = partial_trace(&rho, &[0, 2], n);
        assert!((r.trace_re() - t).abs() < 1e-9);
        assert_eq!(r.rows(), 2);
    }

    #[test]
    fn permute_qubits_round_trip() {
        let a = x().kron(&h()); // X on q0, H on q1
        let swapped = permute_qubits(&a, &[1, 0], 2);
        let expect = h().kron(&x());
        assert!(swapped.approx_eq(&expect, TOL));
        let back = permute_qubits(&swapped, &[1, 0], 2);
        assert!(back.approx_eq(&a, TOL));
    }

    #[test]
    fn bit_helpers() {
        // |q0 q1 q2⟩ = |1 0 1⟩ ⇒ index 0b101 = 5
        assert_eq!(index_of_bits(&[1, 0, 1]), 5);
        assert_eq!(bit_of(5, 0, 3), 1);
        assert_eq!(bit_of(5, 1, 3), 0);
        assert_eq!(bit_of(5, 2, 3), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit position")]
    fn duplicate_positions_panics() {
        embed(&cx(), &[1, 1], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_position_panics() {
        embed(&x(), &[3], 3);
    }
}
