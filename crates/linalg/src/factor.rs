//! Tall-skinny factor kernels for low-rank positive operators `M = V·V†`.
//!
//! The verifier's interesting predicates — Grover's target projector, code
//! spaces, RUS success projectors — are rank-`r` with `r ≪ 2ⁿ`, and the
//! weakest-precondition transformer preserves that structure:
//! `U†(VV†)U = (U†V)(U†V)†`. Keeping the `2ⁿ×r` factor `V` instead of the
//! dense `2ⁿ×2ⁿ` operator turns every `O(8ⁿ)` conjugation on the wp hot
//! path into an `O(4ⁿ·r)` GEMM (or an `O(2ⁿ·2ᵏ·r)` strided sweep for
//! `k`-local statements).
//!
//! This module provides the factor algebra the pipeline needs:
//!
//! * [`gram`] — small `r₁×r₂` Gram matrices `A†B` of tall factors;
//! * [`factor_recompress`] — rank re-truncation after factor sums (Init's
//!   `2ᵏ` Kraus branches, If/NDet combinations) via an eigendecomposition
//!   of the `r×r` Gram matrix — the tall-skinny analogue of a
//!   column-pivoted QR;
//! * [`hconcat`] — column concatenation (`VV† + WW† = [V W][V W]†`);
//! * [`embed_factor`] — the cylinder extension of a factored operator;
//! * [`low_rank_factor`] — rank detection on a dense PSD operator through
//!   [`pivoted_cholesky`](crate::pivoted_cholesky), used when assertions
//!   are loaded so existing corpora benefit with no syntax change.

use crate::cholesky::{exact_diagonal, pivoted_cholesky_capped};
use crate::complex::Complex;
use crate::eigen::eigh;
use crate::matrix::CMat;
use crate::tensor::deposit_bits;

/// Relative eigenvalue threshold below which a Gram direction is treated
/// as numerically null during recompression. Dropping a direction with
/// Gram eigenvalue `λ` perturbs the operator `VV†` by exactly `λ` in
/// operator norm, so this sits far below every solver tolerance.
pub const FACTOR_RANK_RTOL: f64 = 1e-13;

/// Gram matrix `A†·B` of two equal-height factors, computed directly
/// (no materialised adjoint): `O(d·r₁·r₂)` for `d×r` inputs.
///
/// # Panics
///
/// Panics if the row counts differ.
pub fn gram(a: &CMat, b: &CMat) -> CMat {
    assert_eq!(a.rows(), b.rows(), "gram factor height mismatch");
    let (ra, rb) = (a.cols(), b.cols());
    let mut g = CMat::zeros(ra, rb);
    if ra == 0 || rb == 0 || a.rows() == 0 {
        return g;
    }
    // Parallelise over output rows (columns of `a`): each chunk owns a
    // disjoint band of `g` and streams the full height of both factors,
    // conjugating `a` entries on the fly (no materialised adjoint). The
    // `ra×rb` output stays cache-resident, and every `g[(i,j)]`
    // accumulates its `k` terms in ascending order inside one chunk, so
    // results are bitwise identical at every thread count.
    let shared = crate::par::SharedMut::new(g.as_mut_slice());
    crate::par::sweep(ra, a.rows() * rb, |cols| {
        for k in 0..a.rows() {
            let arow = a.row(k);
            let brow = b.row(k);
            for i in cols.clone() {
                let ac = arow[i].conj();
                if ac.is_exact_zero() {
                    continue;
                }
                // SAFETY: chunks cover disjoint `i` ranges, so the
                // reconstituted output rows never alias across threads.
                let grow = unsafe { std::slice::from_raw_parts_mut(shared.ptr().add(i * rb), rb) };
                for (gv, bv) in grow.iter_mut().zip(brow) {
                    *gv += ac * *bv;
                }
            }
        }
    });
    g
}

/// Horizontal concatenation `[A | B]` of two equal-height factors — the
/// factor of the operator sum `AA† + BB†`.
///
/// # Panics
///
/// Panics if the row counts differ.
pub fn hconcat(a: &CMat, b: &CMat) -> CMat {
    assert_eq!(a.rows(), b.rows(), "hconcat factor height mismatch");
    let (ra, rb) = (a.cols(), b.cols());
    CMat::from_fn(a.rows(), ra + rb, |i, j| {
        if j < ra {
            a[(i, j)]
        } else {
            b[(i, j - ra)]
        }
    })
}

/// Re-truncates a factor to its numerical rank while preserving the
/// operator `V·V†` (up to [`FACTOR_RANK_RTOL`]): diagonalise the `r×r`
/// Gram matrix `V†V = U·Λ·U†` and keep `W = V·U₊` for the eigenvalues
/// above threshold — `W`'s columns are orthogonal with norms `√λᵢ` and
/// `W·W† = V·V†` minus the discarded null mass. `O(d·r² + r³)`.
///
/// Factors that are already thin (zero or one column) pass through
/// untouched.
pub fn factor_recompress(v: &CMat) -> CMat {
    let r = v.cols();
    if r <= 1 {
        return v.clone();
    }
    let g = gram(v, v);
    let e = match eigh(&g) {
        Ok(e) => e,
        // A Gram matrix that fails to diagonalise carries NaN/Inf; keep
        // the factor untouched and let downstream checks surface it.
        Err(_) => return v.clone(),
    };
    let lmax = e.values.last().copied().unwrap_or(0.0).max(0.0);
    let cut = FACTOR_RANK_RTOL * lmax.max(1e-300);
    let kept: Vec<usize> = (0..r).filter(|&i| e.values[i] > cut).collect();
    if kept.len() == r {
        // Full numerical rank: recompression cannot shrink it.
        return v.clone();
    }
    // W = V · U₊  (columns in kept order).
    let mut w = CMat::zeros(v.rows(), kept.len());
    for (out_j, &src) in kept.iter().enumerate() {
        for i in 0..v.rows() {
            let mut acc = Complex::ZERO;
            for k in 0..r {
                acc += v[(i, k)] * e.vectors[(k, src)];
            }
            w[(i, out_j)] = acc;
        }
    }
    w
}

/// Cylinder extension of a factored operator: given a `2ᵏ×r` factor `W`
/// acting on register qubits `positions` (of `n`), returns the
/// `2ⁿ × r·2^{n-k}` factor of `embed(W·W†, positions, n)` — one column per
/// (original column, rest-basis-state) pair; no dense `2ⁿ×2ⁿ` matrix is
/// built.
///
/// # Panics
///
/// Panics if `W` does not act on `positions.len()` qubits or positions are
/// invalid.
pub fn embed_factor(w: &CMat, positions: &[usize], n: usize) -> CMat {
    let k = positions.len();
    assert_eq!(w.rows(), 1usize << k, "factor acts on {k} qubits");
    for (t, &p) in positions.iter().enumerate() {
        assert!(p < n, "qubit position {p} out of range for {n} qubits");
        assert!(!positions[..t].contains(&p), "duplicate qubit position {p}");
    }
    let rest: Vec<usize> = (0..n).filter(|q| !positions.contains(q)).collect();
    let n_rest = 1usize << rest.len();
    let r = w.cols();
    let mut out = CMat::zeros(1usize << n, r * n_rest);
    for rest_ix in 0..n_rest {
        let base = deposit_bits(rest_ix, &rest, n);
        for j in 0..r {
            let col = rest_ix * r + j;
            for x in 0..w.rows() {
                let val = w[(x, j)];
                if val.is_exact_zero() {
                    continue;
                }
                out[(base | deposit_bits(x, positions, n), col)] = val;
            }
        }
    }
    out
}

/// Rank detection on a dense operator: attempts `M = V·V†` with `V` of
/// width equal to `M`'s numerical rank, refusing factors wider than
/// `max_rank` (the caller's payoff threshold) — the factorisation aborts
/// as soon as the rank budget is exceeded, so full-rank operators cost
/// `O(d²·max_rank)` at worst, not `O(d³)`.
///
/// Two tiers:
///
/// * an **exact-diagonal screen** (`O(d²)`): scaled identities,
///   computational-basis projectors and their differences — the dominant
///   shapes in practice — read their rank straight off the diagonal;
/// * a diagonal-pivoted Cholesky elimination (`O(d·r²)` Schur updates for
///   a rank-`r` input: a rank-1 projector at dimension 1024 factors in
///   microseconds, where a full eigendecomposition would take seconds),
///   followed by a residual guard `‖VV† − M‖_max ≤ tol`.
///
/// Returns `None` when `M` is not PSD within tolerance, the rank budget
/// is exceeded, or the residual fails — callers then keep the dense form.
pub fn low_rank_factor(m: &CMat, tol: f64, max_rank: usize) -> Option<CMat> {
    if !m.is_square() {
        return None;
    }
    let d = m.rows();
    let stop = FACTOR_RANK_RTOL * m.max_abs().max(1e-300);
    // Tier 1: exactly diagonal operators.
    if let Some(diag) = exact_diagonal(m) {
        if diag.iter().any(|&x| x < -stop) {
            return None; // indefinite
        }
        let nz: Vec<usize> = (0..d).filter(|&i| diag[i] > stop).collect();
        if nz.len() > max_rank {
            return None;
        }
        let mut v = CMat::zeros(d, nz.len());
        for (j, &i) in nz.iter().enumerate() {
            v[(i, j)] = Complex::real(diag[i].sqrt());
        }
        return Some(v);
    }
    // Tier 2: rank-capped pivoted Cholesky.
    let (l, perm, rank) = pivoted_cholesky_capped(m, stop, max_rank)?;
    // Undo the pivot permutation: M = Pᵀ·L·L†·P, so V[perm[i]] = L[i].
    let mut v = CMat::zeros(d, rank);
    for i in 0..d {
        for j in 0..rank.min(i + 1) {
            v[(perm[i], j)] = l[(i, j)];
        }
    }
    // Residual guard: the truncated factorisation must reproduce M.
    let bound = tol * m.max_abs().max(1.0);
    for i in 0..d {
        for j in 0..d {
            let mut acc = Complex::ZERO;
            for k in 0..rank {
                acc += v[(i, k)] * v[(j, k)].conj();
            }
            if !(acc - m[(i, j)]).is_zero(bound) {
                return None;
            }
        }
    }
    Some(v)
}

/// Relative gap below which two descending Gram eigenvalues are treated
/// as one degenerate cluster by [`canonical_factor`]. Far wider than the
/// numerical noise between factorings of the same operator (~1e-12), far
/// narrower than genuinely distinct spectra.
pub const CANONICAL_CLUSTER_RTOL: f64 = 1e-8;

/// A **canonical** factor of the operator `V·V†`: a function of the
/// operator alone, not of the particular factoring `V` that represents
/// it. Two factors `V`, `W` with `V·V† = W·W†` (up to numerical noise)
/// map to entry-wise nearly identical outputs, so quantised hashes of the
/// canonical form give representation-independent cache keys (see
/// `nqpv-core`'s verdict cache).
///
/// Construction (eigenbasis-phase-fixed form):
///
/// 1. Diagonalise the `r×r` Gram matrix `V†V = U·Λ·U†`; the non-null
///    eigenpairs give the spectral decomposition `V·V† = Σ λᵢ·bᵢbᵢ†`.
/// 2. Group eigenvalues into degenerate clusters
///    ([`CANONICAL_CLUSTER_RTOL`], descending order). Within a cluster
///    the eigenbasis is arbitrary — only the eigen*space* is canonical.
/// 3. Re-derive a canonical basis of each cluster subspace by projecting
///    the standard basis vectors `e₀, e₁, …` onto it in index order and
///    Gram–Schmidt-orthonormalising the survivors (column-pivoted QR of
///    the spectral projector with a fixed pivot order).
/// 4. Fix each basis vector's global phase by rotating its
///    largest-modulus entry (lowest index on near-ties) to the positive
///    real axis, and scale by `√λ̄` of the cluster.
///
/// Canonicalisation is best-effort at cluster/pivot/tie boundaries —
/// a missed identification only costs a cache hit, never correctness —
/// but exact in the common cases (projectors, scaled projectors, generic
/// non-degenerate spectra). `O(d·r² + r³)` for the eigenstage plus
/// `O(d·r)` per scanned pivot column; the scan stops after `r` accepts.
pub fn canonical_factor(v: &CMat) -> CMat {
    let d = v.rows();
    let r = v.cols();
    if r == 0 {
        return v.clone();
    }
    let g = gram(v, v);
    let e = match eigh(&g) {
        Ok(e) => e,
        // NaN/Inf factors cannot be canonicalised; hand back the input so
        // the caller still gets *a* key (just not a representation-free
        // one) and downstream checks surface the bad numbers.
        Err(_) => return v.clone(),
    };
    let lmax = e.values.last().copied().unwrap_or(0.0);
    // Zero (or NaN-poisoned) operator: canonical form is the empty factor.
    if lmax.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return CMat::zeros(d, 0);
    }
    let cut = FACTOR_RANK_RTOL * lmax;
    // Non-null eigenpairs, descending. `eigh` returns ascending order.
    let kept: Vec<usize> = (0..r).rev().filter(|&i| e.values[i] > cut).collect();
    // Orthonormal eigenbasis B = V·uᵢ/√λᵢ, one column per kept pair.
    let mut basis = CMat::zeros(d, kept.len());
    for (j, &src) in kept.iter().enumerate() {
        let s = 1.0 / e.values[src].sqrt();
        for i in 0..d {
            let mut acc = Complex::ZERO;
            for k in 0..r {
                acc += v[(i, k)] * e.vectors[(k, src)];
            }
            basis[(i, j)] = acc * Complex::real(s);
        }
    }
    let mut out = CMat::zeros(d, kept.len());
    let mut col = 0usize;
    let mut lo = 0usize;
    while lo < kept.len() {
        // Extend the cluster while the descending gap stays negligible.
        let mut hi = lo + 1;
        while hi < kept.len()
            && e.values[kept[hi - 1]] - e.values[kept[hi]] <= CANONICAL_CLUSTER_RTOL * lmax
        {
            hi += 1;
        }
        let k = hi - lo;
        let lam_mean = kept[lo..hi].iter().map(|&i| e.values[i]).sum::<f64>() / k as f64;
        let scale = Complex::real(lam_mean.sqrt());
        // Canonical orthonormal basis of the cluster subspace: project
        // e_j (j ascending) onto the subspace, orthogonalise against the
        // vectors already accepted for this cluster, keep the survivors.
        let mut accepted = 0usize;
        for j in 0..d {
            if accepted == k {
                break;
            }
            // p = B_c · (B_c† e_j); B_c† e_j is the conjugated j-th row.
            let mut p = vec![Complex::ZERO; d];
            for c_idx in lo..hi {
                let w = basis[(j, c_idx)].conj();
                if w.is_exact_zero() {
                    continue;
                }
                for (i, pi) in p.iter_mut().enumerate() {
                    *pi += basis[(i, c_idx)] * w;
                }
            }
            // Two rounds of Gram–Schmidt against this cluster's accepted
            // columns (re-orthogonalisation keeps the form stable).
            for _ in 0..2 {
                for a in (col - accepted)..col {
                    let mut dot = Complex::ZERO;
                    for i in 0..d {
                        dot += out[(i, a)].conj() * p[i];
                    }
                    // Accepted columns carry norm √λ̄; normalise the dot.
                    let dot = dot * Complex::real(1.0 / lam_mean);
                    for i in 0..d {
                        let sub = out[(i, a)] * dot;
                        p[i] -= sub;
                    }
                }
            }
            let norm2: f64 = p.iter().map(|z| z.norm_sqr()).sum();
            // Pivot threshold: components below √(rtol) of a unit vector
            // are residual noise, not a new direction.
            if norm2 <= 1e-12 {
                continue;
            }
            // Phase fix: largest-modulus entry (lowest index on ties
            // within 1e-9) rotated to the positive real axis.
            let mut best = 0usize;
            let mut best_abs = 0.0f64;
            for (i, z) in p.iter().enumerate() {
                let a = z.abs();
                if a > best_abs * (1.0 + 1e-9) {
                    best = i;
                    best_abs = a;
                }
            }
            let phase = p[best] * Complex::real(1.0 / best_abs);
            let rot = phase.conj() * Complex::real(1.0 / norm2.sqrt());
            for (i, z) in p.iter().enumerate() {
                out[(i, col)] = *z * rot * scale;
            }
            accepted += 1;
            col += 1;
        }
        // Numerically deficient pivot scans (accepted < k) simply yield a
        // narrower canonical factor; the quantised hash stays a function
        // of the operator.
        lo = hi;
    }
    if col < out.cols() {
        let trimmed = CMat::from_fn(d, col, |i, j| out[(i, j)]);
        return trimmed;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c, cr, TOL};
    use crate::matrix::CVec;
    use crate::tensor::embed;

    fn random_factor(d: usize, r: usize, seed: &mut u64) -> CMat {
        let next = move |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            (*s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        CMat::from_fn(d, r, |_, _| c(next(seed), next(seed)))
    }

    /// A Haar-ish random r×r unitary via Gram–Schmidt of a random matrix.
    fn random_unitary(r: usize, seed: &mut u64) -> CMat {
        let m = random_factor(r, r, seed);
        let mut q = CMat::zeros(r, r);
        for j in 0..r {
            let mut col: Vec<Complex> = (0..r).map(|i| m[(i, j)]).collect();
            for a in 0..j {
                let mut dot = Complex::ZERO;
                for i in 0..r {
                    dot += q[(i, a)].conj() * col[i];
                }
                for (i, ci) in col.iter_mut().enumerate() {
                    *ci -= q[(i, a)] * dot;
                }
            }
            let n = col.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            for (i, ci) in col.iter().enumerate() {
                q[(i, j)] = ci.scale(1.0 / n);
            }
        }
        q
    }

    #[test]
    fn canonical_factor_is_representation_independent() {
        // V and V·Q (Q unitary) represent the same operator V·V†: their
        // canonical forms must agree entry-wise to high precision, even
        // with a degenerate (projector) spectrum.
        let mut seed = 41u64;
        for r in [1usize, 2, 3] {
            // Orthonormalise a random factor → rank-r projector (fully
            // degenerate spectrum, the hard case for canonicalisation).
            let raw = random_factor(8, r, &mut seed);
            let v = {
                let mut q = CMat::zeros(8, r);
                let big = random_unitary(8, &mut seed);
                for j in 0..r {
                    for i in 0..8 {
                        q[(i, j)] = big[(i, j)];
                    }
                }
                q
            };
            let _ = raw;
            let qmix = random_unitary(r, &mut seed);
            let w = v.mul(&qmix);
            let ca = canonical_factor(&v);
            let cb = canonical_factor(&w);
            assert_eq!(ca.cols(), cb.cols(), "rank {r}");
            assert!(
                ca.approx_eq(&cb, 1e-9),
                "canonical forms of equivalent rank-{r} factors must agree"
            );
            // And the canonical form still represents the same operator.
            assert!(ca.mul(&ca.adjoint()).approx_eq(&v.mul(&v.adjoint()), 1e-9));
        }
    }

    #[test]
    fn canonical_factor_distinct_spectra_and_phases() {
        // Non-degenerate spectrum: 2·|ψ⟩⟨ψ| + 1·|φ⟩⟨φ| built from two
        // different factor orderings/phases must canonicalise together.
        let u = random_unitary(4, &mut { 77u64 });
        let psi = u.col(0);
        let phi = u.col(1);
        let mk = |a: &CVec, sa: f64, b: &CVec, sb: f64, phase: Complex| {
            CMat::from_fn(4, 2, |i, j| {
                if j == 0 {
                    a.as_slice()[i].scale(sa) * phase
                } else {
                    b.as_slice()[i].scale(sb)
                }
            })
        };
        let s2 = 2.0f64.sqrt();
        let v = mk(&psi, s2, &phi, 1.0, Complex::ONE);
        // Swapped column order and a phase on the first column.
        let w = mk(&phi, 1.0, &psi, s2, Complex::I);
        let ca = canonical_factor(&v);
        let cb = canonical_factor(&w);
        assert!(ca.approx_eq(&cb, 1e-9), "order/phase must not matter");
        // Distinct operators must canonicalise apart.
        let other = mk(&psi, 1.3, &phi, 1.0, Complex::ONE);
        let cc = canonical_factor(&other);
        assert!(!ca.approx_eq(&cc, 1e-6));
    }

    #[test]
    fn canonical_factor_zero_and_empty() {
        let z = canonical_factor(&CMat::zeros(4, 2));
        assert_eq!(z.cols(), 0);
        let e = canonical_factor(&CMat::zeros(4, 0));
        assert_eq!(e.cols(), 0);
    }

    #[test]
    fn gram_matches_adjoint_product() {
        let mut seed = 11u64;
        let a = random_factor(8, 3, &mut seed);
        let b = random_factor(8, 2, &mut seed);
        assert!(gram(&a, &b).approx_eq(&a.adjoint().mul(&b), 1e-10));
    }

    #[test]
    fn hconcat_is_the_operator_sum_factor() {
        let mut seed = 7u64;
        let a = random_factor(4, 2, &mut seed);
        let b = random_factor(4, 1, &mut seed);
        let j = hconcat(&a, &b);
        let sum = a.mul(&a.adjoint()).add_mat(&b.mul(&b.adjoint()));
        assert!(j.mul(&j.adjoint()).approx_eq(&sum, 1e-10));
    }

    #[test]
    fn recompress_preserves_operator_and_shrinks_rank() {
        let mut seed = 23u64;
        let base = random_factor(8, 2, &mut seed);
        // Duplicate columns: true rank 2, width 4.
        let fat = hconcat(&base, &base);
        let thin = factor_recompress(&fat);
        assert!(
            thin.cols() <= 2,
            "rank must shrink to 2, got {}",
            thin.cols()
        );
        let dense_fat = fat.mul(&fat.adjoint());
        let dense_thin = thin.mul(&thin.adjoint());
        assert!(dense_thin.approx_eq(&dense_fat, 1e-9));
    }

    #[test]
    fn recompress_keeps_full_rank_factors() {
        let mut seed = 3u64;
        let v = random_factor(6, 3, &mut seed);
        let w = factor_recompress(&v);
        assert_eq!(w.cols(), 3);
        assert!(w.mul(&w.adjoint()).approx_eq(&v.mul(&v.adjoint()), 1e-9));
    }

    #[test]
    fn recompress_drops_zero_columns() {
        let v = CMat::from_fn(4, 3, |i, j| {
            if j == 1 {
                Complex::ZERO
            } else {
                cr((i + j) as f64 * 0.25 + 1.0)
            }
        });
        let w = factor_recompress(&v);
        assert!(w.cols() <= 2);
        assert!(w.mul(&w.adjoint()).approx_eq(&v.mul(&v.adjoint()), 1e-9));
    }

    #[test]
    fn embed_factor_matches_dense_embedding() {
        let mut seed = 31u64;
        for positions in [vec![0usize], vec![2], vec![0, 2], vec![2, 0]] {
            let k = positions.len();
            let w = random_factor(1 << k, 2, &mut seed);
            let n = 3;
            let v = embed_factor(&w, &positions, n);
            assert_eq!(v.cols(), 2 << (n - k));
            let dense = embed(&w.mul(&w.adjoint()), &positions, n);
            assert!(
                v.mul(&v.adjoint()).approx_eq(&dense, 1e-10),
                "positions {positions:?}"
            );
        }
    }

    #[test]
    fn embed_factor_zero_width() {
        let w = CMat::zeros(2, 0);
        let v = embed_factor(&w, &[1], 2);
        assert_eq!((v.rows(), v.cols()), (4, 0));
    }

    #[test]
    fn low_rank_factor_detects_projector_ranks() {
        // Rank-1 projector at dimension 16.
        let marked = CVec::basis(16, 15).projector();
        let v = low_rank_factor(&marked, 1e-8, 8).expect("projector is PSD");
        assert_eq!(v.cols(), 1);
        assert!(v.mul(&v.adjoint()).approx_eq(&marked, 1e-9));
        // Rank-2 sum of orthogonal projectors.
        let two = CVec::basis(8, 1)
            .projector()
            .add_mat(&CVec::basis(8, 5).projector());
        let v2 = low_rank_factor(&two, 1e-8, 4).expect("PSD");
        assert_eq!(v2.cols(), 2);
        assert!(v2.mul(&v2.adjoint()).approx_eq(&two, 1e-9));
        // The zero operator has rank 0.
        let v0 = low_rank_factor(&CMat::zeros(4, 4), 1e-8, 2).expect("0 is PSD");
        assert_eq!(v0.cols(), 0);
        // Full-rank identity factors at full width.
        let vi = low_rank_factor(&CMat::identity(4), 1e-8, 4).expect("I is PSD");
        assert_eq!(vi.cols(), 4);
    }

    #[test]
    fn low_rank_factor_rejects_indefinite() {
        let x = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]); // eigenvalues ±1
        assert!(low_rank_factor(&x, 1e-8, 2).is_none());
        assert!(low_rank_factor(&CMat::zeros(2, 3), 1e-8, 2).is_none());
    }

    #[test]
    fn low_rank_factor_roundtrips_random_psd() {
        let mut seed = 99u64;
        for d in [2usize, 4, 8] {
            for r in [1usize, 2, d / 2] {
                let g = random_factor(d, r.max(1), &mut seed);
                let m = g.mul(&g.adjoint());
                let v = low_rank_factor(&m, 1e-7, d).expect("PSD by construction");
                assert!(v.cols() <= r.max(1));
                assert!(
                    v.mul(&v.adjoint())
                        .approx_eq(&m, 1e-7 * (1.0 + m.max_abs())),
                    "d={d} r={r}"
                );
            }
        }
    }

    #[test]
    fn gram_handles_empty_factors() {
        let a = CMat::zeros(4, 0);
        let g = gram(&a, &a);
        assert_eq!((g.rows(), g.cols()), (0, 0));
        assert_eq!(factor_recompress(&a).cols(), 0);
        let _ = TOL;
    }
}
