//! Cholesky factorisation and fast positive-semidefiniteness tests.
//!
//! The Löwner order `A ⊑ B` ("B − A is positive") is the single most
//! frequently decided question in the verifier: every (Imp) side condition
//! and every singleton `⊑_inf` test reduces to it (paper Sec. 6.3: "simply
//! checking if the eigenvalues of N − M are all nonnegative"). A tolerance
//! Cholesky factorisation decides it in one `O(n³/3)` pass — much cheaper
//! than a full eigendecomposition.

use crate::complex::{Complex, TOL};
use crate::matrix::CMat;

/// Attempts an exact Cholesky factorisation `A = L·L†` with `L` lower
/// triangular. Returns `None` if `A` is not (numerically) positive definite.
///
/// The strict positivity requirement makes this unsuitable for *semi*definite
/// inputs; use [`is_psd`] for those.
pub fn cholesky(a: &CMat) -> Option<CMat> {
    if !a.is_square() {
        return None;
    }
    let n = a.rows();
    let mut l = CMat::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)].re;
        for k in 0..j {
            d -= l[(j, k)].norm_sqr();
        }
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        let dj = d.sqrt();
        l[(j, j)] = Complex::real(dj);
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)].conj();
            }
            l[(i, j)] = s / dj;
        }
    }
    Some(l)
}

/// Decides whether a hermitian matrix is positive semidefinite within an
/// absolute tolerance `tol ≥ 0`: returns `true` iff `A + tol·I` admits a
/// Cholesky factorisation, i.e. iff `λ_min(A) > -tol` up to rounding.
///
/// The input is hermitised first so callers may pass matrices with tiny
/// anti-hermitian drift.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{CMat, is_psd};
/// let p = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, 0.0]); // |0⟩⟨0|
/// assert!(is_psd(&p, 1e-9));
/// let m = CMat::from_real(2, 2, &[-1.0, 0.0, 0.0, 1.0]);
/// assert!(!is_psd(&m, 1e-9));
/// ```
pub fn is_psd(a: &CMat, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    if n == 0 {
        return true;
    }
    let mut shifted = a.hermitize();
    // Scale-aware shift: tol is treated as absolute but we never shift by
    // less than machine noise relative to the matrix magnitude.
    let shift = tol.max(1e-14 * shifted.max_abs());
    for i in 0..n {
        shifted[(i, i)] += Complex::real(shift);
    }
    cholesky(&shifted).is_some()
}

/// Decides the Löwner order `A ⊑ B` within tolerance: `B − A ⪰ -tol·I`.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{CMat, lowner_le};
/// let half = CMat::identity(2).scale_re(0.5);
/// let id = CMat::identity(2);
/// assert!(lowner_le(&half, &id, 1e-9));
/// assert!(!lowner_le(&id, &half, 1e-9));
/// ```
pub fn lowner_le(a: &CMat, b: &CMat, tol: f64) -> bool {
    is_psd(&b.sub_mat(a), tol)
}

/// Decides whether a hermitian matrix is a *quantum predicate*, i.e.
/// `0 ⊑ M ⊑ I` within tolerance (the set `P(H_V)` of the paper, Sec. 4).
pub fn is_predicate(m: &CMat, tol: f64) -> bool {
    m.is_square()
        && m.is_hermitian(tol.max(TOL))
        && is_psd(m, tol)
        && lowner_le(m, &CMat::identity(m.rows()), tol)
}

/// Decides whether a matrix is a partial density operator: hermitian,
/// positive, and `tr ρ ≤ 1 + tol` (Selinger's convention, paper Sec. 2).
pub fn is_partial_density(rho: &CMat, tol: f64) -> bool {
    rho.is_square()
        && rho.is_hermitian(tol.max(TOL))
        && is_psd(rho, tol)
        && rho.trace_re() <= 1.0 + tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c, cr};
    use crate::eigen::eigh;

    #[test]
    fn factorises_spd() {
        let a = CMat::from_real(3, 3, &[4.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0]);
        let l = cholesky(&a).expect("SPD matrix must factor");
        let rec = l.mul(&l.adjoint());
        assert!(rec.approx_eq(&a, 1e-10));
        // Lower triangular
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(l[(i, j)].is_zero(1e-12));
            }
        }
    }

    #[test]
    fn complex_spd() {
        let a = CMat::from_vec(2, 2, vec![cr(2.0), c(0.0, -0.5), c(0.0, 0.5), cr(2.0)]);
        let l = cholesky(&a).expect("complex SPD must factor");
        assert!(l.mul(&l.adjoint()).approx_eq(&a, 1e-12));
    }

    #[test]
    fn rejects_indefinite() {
        let a = CMat::from_real(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
        assert!(!is_psd(&a, 1e-9));
    }

    #[test]
    fn semidefinite_rank_deficient_passes_is_psd() {
        // |+⟩⟨+| is PSD but singular; exact Cholesky may fail, is_psd must not.
        let p = CMat::from_real(2, 2, &[0.5, 0.5, 0.5, 0.5]);
        assert!(is_psd(&p, 1e-9));
    }

    #[test]
    fn psd_agrees_with_eigenvalues_on_samples() {
        let mut seed = 99u64;
        let next = move |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            (*s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in [2usize, 3, 4, 6] {
            for _ in 0..20 {
                let g = CMat::from_fn(n, n, |_, _| c(next(&mut seed), next(&mut seed)));
                let h = g.add_mat(&g.adjoint()).scale_re(0.5);
                let min = eigh(&h).unwrap().min();
                let by_chol = is_psd(&h, 1e-9);
                let by_eig = min >= -1e-9;
                // Allow disagreement only in a razor-thin band around zero.
                if min.abs() > 1e-7 {
                    assert_eq!(by_chol, by_eig, "n={n}, min eig {min}");
                }
            }
        }
    }

    #[test]
    fn lowner_is_a_partial_order_on_samples() {
        let a = CMat::identity(3).scale_re(0.3);
        let b = CMat::identity(3).scale_re(0.7);
        assert!(lowner_le(&a, &b, 1e-12));
        assert!(lowner_le(&a, &a, 1e-12)); // reflexive
        assert!(!lowner_le(&b, &a, 1e-12)); // antisymmetric direction
    }

    #[test]
    fn predicate_check() {
        assert!(is_predicate(&CMat::identity(4), 1e-9));
        assert!(is_predicate(&CMat::zeros(4, 4), 1e-9));
        assert!(is_predicate(&CMat::identity(4).scale_re(0.5), 1e-9));
        assert!(!is_predicate(&CMat::identity(4).scale_re(1.5), 1e-9));
        assert!(!is_predicate(&CMat::identity(4).scale_re(-0.5), 1e-9));
    }

    #[test]
    fn partial_density_check() {
        let rho = CMat::from_real(2, 2, &[0.5, 0.0, 0.0, 0.25]);
        assert!(is_partial_density(&rho, 1e-9));
        let too_big = CMat::identity(2);
        assert!(!is_partial_density(&too_big, 1e-9)); // trace 2 > 1
    }

    #[test]
    fn non_square_is_not_psd() {
        assert!(!is_psd(&CMat::zeros(2, 3), 1e-9));
        assert!(cholesky(&CMat::zeros(2, 3)).is_none());
    }
}
