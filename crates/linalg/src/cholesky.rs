//! Cholesky factorisation and fast positive-semidefiniteness tests.
//!
//! The Löwner order `A ⊑ B` ("B − A is positive") is the single most
//! frequently decided question in the verifier: every (Imp) side condition
//! and every singleton `⊑_inf` test reduces to it (paper Sec. 6.3: "simply
//! checking if the eigenvalues of N − M are all nonnegative"). A tolerance
//! Cholesky factorisation decides it in one `O(n³/3)` pass — much cheaper
//! than a full eigendecomposition.

use crate::complex::{Complex, TOL};
use crate::matrix::CMat;

/// Attempts an exact Cholesky factorisation `A = L·L†` with `L` lower
/// triangular. Returns `None` if `A` is not (numerically) positive definite.
///
/// The strict positivity requirement makes this unsuitable for *semi*definite
/// inputs; use [`is_psd`] for those.
pub fn cholesky(a: &CMat) -> Option<CMat> {
    if !a.is_square() {
        return None;
    }
    let n = a.rows();
    let mut l = CMat::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)].re;
        for k in 0..j {
            d -= l[(j, k)].norm_sqr();
        }
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        let dj = d.sqrt();
        l[(j, j)] = Complex::real(dj);
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)].conj();
            }
            l[(i, j)] = s / dj;
        }
    }
    Some(l)
}

/// Decides whether a hermitian matrix is positive semidefinite within an
/// absolute tolerance `tol ≥ 0`: returns `true` iff `A + tol·I` admits a
/// Cholesky factorisation, i.e. iff `λ_min(A) > -tol` up to rounding.
///
/// The input is hermitised first so callers may pass matrices with tiny
/// anti-hermitian drift.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{CMat, is_psd};
/// let p = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, 0.0]); // |0⟩⟨0|
/// assert!(is_psd(&p, 1e-9));
/// let m = CMat::from_real(2, 2, &[-1.0, 0.0, 0.0, 1.0]);
/// assert!(!is_psd(&m, 1e-9));
/// ```
pub fn is_psd(a: &CMat, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    if n == 0 {
        return true;
    }
    if let Some(min_diag) = diagonal_min(a) {
        return min_diag >= -tol.max(1e-14 * a.max_abs());
    }
    let mut shifted = a.hermitize();
    // Scale-aware shift: tol is treated as absolute but we never shift by
    // less than machine noise relative to the matrix magnitude.
    let shift = tol.max(1e-14 * shifted.max_abs());
    for i in 0..n {
        shifted[(i, i)] += Complex::real(shift);
    }
    cholesky(&shifted).is_some()
}

/// Diagonal-pivoted Cholesky factorisation of a hermitian matrix:
/// `P·A·Pᵀ = L·L†` with `L` lower triangular, choosing the largest
/// remaining diagonal entry as pivot at every step. Returns
/// `(l, perm, rank)` where `perm[k]` is the original index pivoted into
/// position `k`; elimination stops at the numerical `rank` (remaining
/// diagonal below `rank_tol`). Returns `None` as soon as a pivot would be
/// negative beyond `-rank_tol` — the matrix is then certainly indefinite.
///
/// Unlike [`cholesky`], the pivoted form handles rank-deficient positive
/// *semi*definite matrices without a tolerance shift, and exits after
/// `O(d·r²)` work for a rank-`r` input — both common in the verifier,
/// where predicates are low-rank projectors.
pub fn pivoted_cholesky(a: &CMat, rank_tol: f64) -> Option<(CMat, Vec<usize>, usize)> {
    pivoted_cholesky_capped(a, rank_tol, usize::MAX)
}

/// [`pivoted_cholesky`] with a **rank budget**: gives up (returns `None`)
/// as soon as elimination would pass `max_rank` pivots with diagonal mass
/// remaining, bounding the Schur updates at `O(d²·max_rank)`. The rank
/// detector uses this so full-rank operators abort cheaply instead of
/// paying the full `O(d³)` factorisation.
pub(crate) fn pivoted_cholesky_capped(
    a: &CMat,
    rank_tol: f64,
    max_rank: usize,
) -> Option<(CMat, Vec<usize>, usize)> {
    if !a.is_square() {
        return None;
    }
    let d = a.rows();
    let mut w = a.hermitize();
    let mut perm: Vec<usize> = (0..d).collect();
    let mut l = CMat::zeros(d, d);
    let scale = w.max_abs();
    let stop = rank_tol.max(1e-15 * scale);
    for k in 0..d {
        // Largest remaining diagonal entry.
        let (mut p, mut best) = (k, w[(k, k)].re);
        for i in (k + 1)..d {
            let v = w[(i, i)].re;
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < -stop || !best.is_finite() {
            return None; // negative pivot: indefinite beyond tolerance
        }
        if best <= stop {
            // The pivot is the *largest* remaining diagonal, so every
            // trailing diagonal is ≤ stop here. If A is PSD its Schur
            // complement is PSD too, and Cauchy–Schwarz bounds every
            // trailing off-diagonal by √(a_ii·a_jj) ≤ stop — so anything
            // meaningfully larger (beyond elimination round-off, which is
            // O(ε·‖A‖) per update chain) certifies indefiniteness.
            let off = 10.0 * stop + 1e-12 * scale;
            for i in k..d {
                for j in k..d {
                    if i != j && w[(i, j)].abs() > off {
                        return None;
                    }
                }
            }
            return Some((l, perm, k));
        }
        if k == max_rank {
            return None; // rank budget exceeded with mass remaining
        }
        if p != k {
            swap_sym(&mut w, k, p);
            perm.swap(k, p);
            // Keep already-computed L rows consistent with the permutation.
            for j in 0..k {
                let t = l[(k, j)];
                l[(k, j)] = l[(p, j)];
                l[(p, j)] = t;
            }
        }
        let piv = best.sqrt();
        l[(k, k)] = Complex::real(piv);
        for i in (k + 1)..d {
            l[(i, k)] = w[(i, k)] / piv;
        }
        // Schur-complement update of the trailing block.
        for i in (k + 1)..d {
            for j in (k + 1)..=i {
                let upd = l[(i, k)] * l[(j, k)].conj();
                let v = w[(i, j)] - upd;
                w[(i, j)] = v;
                if i != j {
                    w[(j, i)] = v.conj();
                }
            }
        }
    }
    Some((l, perm, d))
}

/// `Some(real diagonal)` when the matrix is **exactly** diagonal with
/// real, non-NaN diagonal entries, else `None`. Shared by the PSD fast
/// paths below and the low-rank factor detector: scaled identities,
/// basis projectors and their differences — the dominant shapes once the
/// wp pipeline runs factored — are decided in `O(d²)` through this
/// instead of an `O(d³)` factorisation.
pub(crate) fn exact_diagonal(a: &CMat) -> Option<Vec<f64>> {
    let d = a.rows();
    let mut diag = Vec::with_capacity(d);
    for i in 0..d {
        for j in 0..d {
            let z = a[(i, j)];
            if i == j {
                if z.im != 0.0 || z.re.is_nan() {
                    return None;
                }
                diag.push(z.re);
            } else if !z.is_exact_zero() {
                return None;
            }
        }
    }
    Some(diag)
}

/// Minimum entry of an exactly-diagonal matrix (see [`exact_diagonal`]).
fn diagonal_min(a: &CMat) -> Option<f64> {
    exact_diagonal(a).map(|d| d.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Symmetric row+column swap of a hermitian working matrix.
fn swap_sym(w: &mut CMat, a: usize, b: usize) {
    let d = w.rows();
    for j in 0..d {
        let t = w[(a, j)];
        w[(a, j)] = w[(b, j)];
        w[(b, j)] = t;
    }
    for i in 0..d {
        let t = w[(i, a)];
        w[(i, a)] = w[(i, b)];
        w[(i, b)] = t;
    }
}

/// Positive-semidefiniteness within `tol` via [`pivoted_cholesky`]:
/// `true` iff `A + tol·I` admits a diagonal-pivoted factorisation.
///
/// Semantically equivalent to [`is_psd`] but rank-deficient inputs
/// terminate after the numerical rank is exhausted and clear-margin
/// indefinite inputs abort at the first negative pivot — the fast PSD
/// path used by the `⊑_inf` solver ahead of any eigenvalue iteration.
pub fn is_psd_pivoted(a: &CMat, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    if n == 0 {
        return true;
    }
    if let Some(min_diag) = diagonal_min(a) {
        return min_diag >= -tol.max(1e-14 * a.max_abs());
    }
    let mut shifted = a.hermitize();
    let shift = tol.max(1e-14 * shifted.max_abs());
    for i in 0..n {
        shifted[(i, i)] += Complex::real(shift);
    }
    pivoted_cholesky(&shifted, 1e-14 * (1.0 + shifted.max_abs())).is_some()
}

/// Decides the Löwner order `A ⊑ B` within tolerance: `B − A ⪰ -tol·I`.
///
/// # Examples
///
/// ```
/// use nqpv_linalg::{CMat, lowner_le};
/// let half = CMat::identity(2).scale_re(0.5);
/// let id = CMat::identity(2);
/// assert!(lowner_le(&half, &id, 1e-9));
/// assert!(!lowner_le(&id, &half, 1e-9));
/// ```
pub fn lowner_le(a: &CMat, b: &CMat, tol: f64) -> bool {
    is_psd(&b.sub_mat(a), tol)
}

/// Decides whether a hermitian matrix is a *quantum predicate*, i.e.
/// `0 ⊑ M ⊑ I` within tolerance (the set `P(H_V)` of the paper, Sec. 4).
pub fn is_predicate(m: &CMat, tol: f64) -> bool {
    m.is_square()
        && m.is_hermitian(tol.max(TOL))
        && is_psd(m, tol)
        && lowner_le(m, &CMat::identity(m.rows()), tol)
}

/// Decides whether a matrix is a partial density operator: hermitian,
/// positive, and `tr ρ ≤ 1 + tol` (Selinger's convention, paper Sec. 2).
pub fn is_partial_density(rho: &CMat, tol: f64) -> bool {
    rho.is_square()
        && rho.is_hermitian(tol.max(TOL))
        && is_psd(rho, tol)
        && rho.trace_re() <= 1.0 + tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c, cr};
    use crate::eigen::eigh;

    #[test]
    fn factorises_spd() {
        let a = CMat::from_real(3, 3, &[4.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0]);
        let l = cholesky(&a).expect("SPD matrix must factor");
        let rec = l.mul(&l.adjoint());
        assert!(rec.approx_eq(&a, 1e-10));
        // Lower triangular
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(l[(i, j)].is_zero(1e-12));
            }
        }
    }

    #[test]
    fn complex_spd() {
        let a = CMat::from_vec(2, 2, vec![cr(2.0), c(0.0, -0.5), c(0.0, 0.5), cr(2.0)]);
        let l = cholesky(&a).expect("complex SPD must factor");
        assert!(l.mul(&l.adjoint()).approx_eq(&a, 1e-12));
    }

    #[test]
    fn rejects_indefinite() {
        let a = CMat::from_real(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
        assert!(!is_psd(&a, 1e-9));
    }

    #[test]
    fn semidefinite_rank_deficient_passes_is_psd() {
        // |+⟩⟨+| is PSD but singular; exact Cholesky may fail, is_psd must not.
        let p = CMat::from_real(2, 2, &[0.5, 0.5, 0.5, 0.5]);
        assert!(is_psd(&p, 1e-9));
    }

    #[test]
    fn psd_agrees_with_eigenvalues_on_samples() {
        let mut seed = 99u64;
        let next = move |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            (*s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in [2usize, 3, 4, 6] {
            for _ in 0..20 {
                let g = CMat::from_fn(n, n, |_, _| c(next(&mut seed), next(&mut seed)));
                let h = g.add_mat(&g.adjoint()).scale_re(0.5);
                let min = eigh(&h).unwrap().min();
                let by_chol = is_psd(&h, 1e-9);
                let by_eig = min >= -1e-9;
                // Allow disagreement only in a razor-thin band around zero.
                if min.abs() > 1e-7 {
                    assert_eq!(by_chol, by_eig, "n={n}, min eig {min}");
                }
            }
        }
    }

    #[test]
    fn lowner_is_a_partial_order_on_samples() {
        let a = CMat::identity(3).scale_re(0.3);
        let b = CMat::identity(3).scale_re(0.7);
        assert!(lowner_le(&a, &b, 1e-12));
        assert!(lowner_le(&a, &a, 1e-12)); // reflexive
        assert!(!lowner_le(&b, &a, 1e-12)); // antisymmetric direction
    }

    #[test]
    fn predicate_check() {
        assert!(is_predicate(&CMat::identity(4), 1e-9));
        assert!(is_predicate(&CMat::zeros(4, 4), 1e-9));
        assert!(is_predicate(&CMat::identity(4).scale_re(0.5), 1e-9));
        assert!(!is_predicate(&CMat::identity(4).scale_re(1.5), 1e-9));
        assert!(!is_predicate(&CMat::identity(4).scale_re(-0.5), 1e-9));
    }

    #[test]
    fn partial_density_check() {
        let rho = CMat::from_real(2, 2, &[0.5, 0.0, 0.0, 0.25]);
        assert!(is_partial_density(&rho, 1e-9));
        let too_big = CMat::identity(2);
        assert!(!is_partial_density(&too_big, 1e-9)); // trace 2 > 1
    }

    #[test]
    fn diagonal_fast_path_matches_general_route() {
        // Exactly diagonal inputs (scaled identities and their
        // differences) take the O(d²) diagonal scan.
        let pos = CMat::diag(&[cr(0.5), cr(0.25), cr(1e-12)]);
        assert!(is_psd(&pos, 1e-9));
        assert!(is_psd_pivoted(&pos, 1e-9));
        let neg = CMat::diag(&[cr(0.5), cr(-0.1), cr(0.25)]);
        assert!(!is_psd(&neg, 1e-9));
        assert!(!is_psd_pivoted(&neg, 1e-9));
        // Tiny negative within tolerance still passes.
        let slack = CMat::diag(&[cr(1.0), cr(-1e-12)]);
        assert!(is_psd(&slack, 1e-9));
        assert!(is_psd_pivoted(&slack, 1e-9));
        // A single off-diagonal entry falls back to the factorisation.
        let mut off = pos.clone();
        off[(0, 1)] = cr(0.1);
        off[(1, 0)] = cr(0.1);
        assert!(is_psd(&off, 1e-9));
        let trap = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(!is_psd_pivoted(&trap, 1e-9));
    }

    #[test]
    fn non_square_is_not_psd() {
        assert!(!is_psd(&CMat::zeros(2, 3), 1e-9));
        assert!(cholesky(&CMat::zeros(2, 3)).is_none());
        assert!(!is_psd_pivoted(&CMat::zeros(2, 3), 1e-9));
        assert!(pivoted_cholesky(&CMat::zeros(2, 3), 1e-12).is_none());
    }

    #[test]
    fn pivoted_factorises_spd_and_reconstructs() {
        let a = CMat::from_real(3, 3, &[4.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0]);
        let (l, perm, rank) = pivoted_cholesky(&a, 1e-12).expect("SPD must factor");
        assert_eq!(rank, 3);
        // P·A·Pᵀ = L·L†, i.e. A[perm[i]][perm[j]] = (L·L†)[i][j].
        let rec = l.mul(&l.adjoint());
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    rec[(i, j)].approx_eq(a[(perm[i], perm[j])], 1e-10),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn pivoted_handles_rank_deficient_psd() {
        // rank-1 projector on 4 dims: exact Cholesky fails, pivoted stops
        // at rank 1 and certifies PSD.
        let v = CMat::from_real(4, 1, &[0.5, 0.5, 0.5, 0.5]);
        let p = v.mul(&v.adjoint());
        let (_, _, rank) = pivoted_cholesky(&p, 1e-12).expect("projector is PSD");
        assert_eq!(rank, 1);
        assert!(is_psd_pivoted(&p, 1e-9));
        // And the zero matrix has rank 0.
        let (_, _, r0) = pivoted_cholesky(&CMat::zeros(3, 3), 1e-12).expect("0 is PSD");
        assert_eq!(r0, 0);
    }

    #[test]
    fn pivoted_rejects_indefinite_including_zero_diagonal_traps() {
        // Zero diagonal but large off-diagonal: indefinite; the unpivoted
        // loop would need the shift to notice, the pivoted test must not
        // be fooled by the empty diagonal.
        let a = CMat::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]); // eigenvalues ±1
        assert!(pivoted_cholesky(&a, 1e-12).is_none());
        assert!(!is_psd_pivoted(&a, 1e-9));
        let b = CMat::from_real(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(!is_psd_pivoted(&b, 1e-9));
    }

    #[test]
    fn pivoted_rejects_tiny_diagonal_with_dominant_off_diagonal() {
        // Regression: after the tol shift the trailing diagonals are ~0
        // while a 1e-7 off-diagonal makes λ_min ≈ -1.01e-7 — two orders
        // beyond tol. A loose off-diagonal threshold (√(stop·scale))
        // wrongly certified this PSD; the PSD-consistent O(stop) bound
        // must reject it.
        let a = CMat::from_real(3, 3, &[1.0, 0.0, 0.0, 0.0, -1e-9, 1e-7, 0.0, 1e-7, -1e-9]);
        assert!(!is_psd_pivoted(&a, 1e-9));
        let min = eigh(&a).unwrap().min();
        assert!(min < -9e-8, "counterexample must be clearly indefinite");
        // The unshifted factorisation also refuses it.
        assert!(pivoted_cholesky(&a, 1e-12).is_none());
    }

    #[test]
    fn pivoted_psd_agrees_with_eigenvalues_on_samples() {
        let mut seed = 1234u64;
        let next = move |s: &mut u64| {
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            (*s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for n in [2usize, 3, 4, 6, 8] {
            for _ in 0..20 {
                let g = CMat::from_fn(n, n, |_, _| c(next(&mut seed), next(&mut seed)));
                let h = g.add_mat(&g.adjoint()).scale_re(0.5);
                let min = eigh(&h).unwrap().min();
                let by_piv = is_psd_pivoted(&h, 1e-9);
                let by_eig = min >= -1e-9;
                if min.abs() > 1e-7 {
                    assert_eq!(by_piv, by_eig, "n={n}, min eig {min}");
                }
                // Shifting past the minimum must always make it PSD.
                let mut shifted = h.clone();
                for i in 0..n {
                    shifted[(i, i)] += Complex::real(min.abs() + 1e-6);
                }
                assert!(is_psd_pivoted(&shifted, 1e-9));
            }
        }
    }
}
