//! Single-precision screening tier for PSD / Löwner decisions.
//!
//! The `⊑` solver spends most of its dense time inside f64 pivoted
//! Cholesky certificates ([`crate::is_psd_pivoted`]). Most obligations
//! are nowhere near the decision boundary, so a half-cost f32
//! factorisation can settle them — **provided it never flips a verdict**.
//! This module runs up to two pivoted f32 Cholesky passes on shifted
//! copies of the operator, each certifying one direction only:
//!
//! * the *down-shifted* pass completes ⇒ `λ_min` clears the f32 error
//!   band with room to spare ⇒ the f64 path is guaranteed to accept →
//!   [`Psd`];
//! * the *up-shifted* pass meets a clearly negative Schur diagonal — a
//!   matrix the f64 path would accept is PD with margin after the
//!   up-shift, so its computed diagonals provably stay positive →
//!   [`NotPsd`];
//! * anything else → [`NearBoundary`], and the caller runs the usual
//!   f64 certificate.
//!
//! Verdicts are therefore byte-identical with the screen on or off; the
//! ablation knob (`VcOptions`/`--no-screen`) exists for benchmarking and
//! distrust, not correctness.
//!
//! [`Psd`]: ScreenVerdict::Psd
//! [`NotPsd`]: ScreenVerdict::NotPsd
//! [`NearBoundary`]: ScreenVerdict::NearBoundary

use crate::cholesky::exact_diagonal;
use crate::matrix::CMat;

/// Outcome of the f32 screening pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScreenVerdict {
    /// Certified PSD with margin — the f64 certificate would accept.
    Psd,
    /// Certified non-PSD with margin — the f64 certificate would reject.
    NotPsd,
    /// Margin within the f32 error band; run the f64 certificate.
    NearBoundary,
}

impl ScreenVerdict {
    /// Telemetry label for this outcome.
    pub fn label(self) -> &'static str {
        match self {
            ScreenVerdict::Psd => "accept",
            ScreenVerdict::NotPsd => "reject",
            ScreenVerdict::NearBoundary => "fallback",
        }
    }
}

/// Error band covering one full f32 pivoted factorisation of a `d×d`
/// matrix with entries up to `scale`: downcast error plus the classical
/// `c·d·ε` backward-error envelope, with slack factor 16.
fn error_band(scale: f64, d: usize) -> f64 {
    (scale * d as f64 * 16.0 * f32::EPSILON as f64).max(1e-30)
}

/// Screens `is_psd_pivoted(a, tol)` in single precision.
///
/// Returns [`ScreenVerdict::Psd`] / [`ScreenVerdict::NotPsd`] only when
/// the f64 certificate is guaranteed to agree; every ambiguous case is
/// [`ScreenVerdict::NearBoundary`]. Exactly-diagonal operators (the
/// diag-scan fast path) are decided in f64 and never fall back.
pub fn screen_psd_f32(a: &CMat, tol: f64) -> ScreenVerdict {
    if !a.is_square() {
        return ScreenVerdict::NearBoundary;
    }
    let n = a.rows();
    if n == 0 {
        return ScreenVerdict::Psd;
    }
    // Exactly-diagonal fast path: replicate the f64 comparison verbatim
    // — no rounding is introduced, so the decision is always exact.
    if let Some(diag) = exact_diagonal(a) {
        let min_diag = diag.iter().copied().fold(f64::INFINITY, f64::min);
        return if min_diag >= -tol.max(1e-14 * a.max_abs()) {
            ScreenVerdict::Psd
        } else {
            ScreenVerdict::NotPsd
        };
    }

    let scale = a.max_abs();
    let shift = tol.max(1e-14 * scale);
    let band = error_band(scale.max(shift), n);

    // Two one-sided passes with opposite shifts. A single factorisation
    // cannot certify both directions: once a down-shift makes the matrix
    // indefinite, a Schur diagonal `Sᵢᵢ = x†Mx` with `‖x‖ ≫ 1` dips
    // arbitrarily far below `λ_min(M)`, so "deeply negative pivot" says
    // nothing quantitative about the unshifted spectrum.
    //
    // Accept pass — factor `M₁ = herm(A) + (shift − 2·band)·I`.
    // Completion means `M₁ + E = LL† ⪰ 0` with `‖E‖ ≤ band`, hence
    // `λ_min(A + shift·I) ≥ 2·band − band > 0`: the f64 factorisation of
    // `A + shift·I` meets strictly positive pivots at every step and
    // accepts.
    if matches!(
        chol_f32(a, shift - 2.0 * band, band as f32, f32::INFINITY),
        F32Chol::Completed
    ) {
        return ScreenVerdict::Psd;
    }
    // Reject pass — factor `M₂ = herm(A) + (shift + 2·band)·I`. If the
    // f64 path were to accept, `λ_min(M₂) ≥ 2·band − stop ≈ 2·band`,
    // making M₂ PD with margin: every exact Schur diagonal is then
    // ≥ λ_min(M₂) (interlacing), element growth is bounded, and the f32
    // computation stays within `band` of exact — no computed diagonal
    // can fall below `band`. A computed diagonal < −band therefore
    // certifies f64 rejection. Anything else (stall on a small pivot,
    // NaN, completion) is inconclusive.
    if matches!(
        chol_f32(a, shift + 2.0 * band, band as f32, band as f32),
        F32Chol::NegativeDiag
    ) {
        return ScreenVerdict::NotPsd;
    }
    ScreenVerdict::NearBoundary
}

/// Outcome of one f32 pivoted factorisation pass.
enum F32Chol {
    /// Every pivot cleared the continuation threshold.
    Completed,
    /// A remaining diagonal fell below `−neg_thr`.
    NegativeDiag,
    /// The largest remaining diagonal fell to `cont_thr` or below, or a
    /// NaN surfaced — no certificate either way.
    Stalled,
}

/// Diagonal-pivoted f32 Cholesky of `hermitize(a) + diag_shift·I` on
/// split re/im planes. Stops at the first remaining diagonal below
/// `−neg_thr` ([`F32Chol::NegativeDiag`]) or once no pivot exceeds
/// `cont_thr` ([`F32Chol::Stalled`]).
fn chol_f32(a: &CMat, diag_shift: f64, cont_thr: f32, neg_thr: f32) -> F32Chol {
    let n = a.rows();
    let mut re = vec![0f32; n * n];
    let mut im = vec![0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let x = a[(i, j)];
            let y = a[(j, i)];
            let mut hre = 0.5 * (x.re + y.re);
            if i == j {
                hre += diag_shift;
            }
            re[i * n + j] = hre as f32;
            im[i * n + j] = (0.5 * (x.im - y.im)) as f32;
        }
    }
    for k in 0..n {
        let mut best = k;
        let mut min_diag = f32::INFINITY;
        for i in k..n {
            let d = re[i * n + i];
            if d.is_nan() {
                return F32Chol::Stalled;
            }
            if d > re[best * n + best] {
                best = i;
            }
            min_diag = min_diag.min(d);
        }
        if min_diag < -neg_thr {
            return F32Chol::NegativeDiag;
        }
        let pivot = re[best * n + best];
        if pivot <= cont_thr {
            return F32Chol::Stalled;
        }
        if best != k {
            swap_sym_f32(&mut re, &mut im, n, k, best);
        }
        // Schur update of the trailing block: S ← S − v·v†/p where v is
        // the pivot column. Hermitian symmetry is maintained explicitly.
        for i in (k + 1)..n {
            let (ar, ai) = (re[i * n + k], im[i * n + k]);
            for j in (k + 1)..=i {
                let (br, bi) = (re[j * n + k], im[j * n + k]);
                let sr = (ar * br + ai * bi) / pivot;
                let si = (ai * br - ar * bi) / pivot;
                re[i * n + j] -= sr;
                im[i * n + j] -= si;
                if i != j {
                    re[j * n + i] -= sr;
                    im[j * n + i] += si;
                }
            }
        }
    }
    F32Chol::Completed
}

/// Symmetric row+column swap on split-plane hermitian f32 storage.
fn swap_sym_f32(re: &mut [f32], im: &mut [f32], n: usize, a: usize, b: usize) {
    for j in 0..n {
        re.swap(a * n + j, b * n + j);
        im.swap(a * n + j, b * n + j);
    }
    for i in 0..n {
        re.swap(i * n + a, i * n + b);
        im.swap(i * n + a, i * n + b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::is_psd_pivoted;
    use crate::complex::c;

    const TOL: f64 = 1e-7;

    fn herm(d: usize, f: impl Fn(usize, usize) -> (f64, f64)) -> CMat {
        let mut m = CMat::zeros(d, d);
        for i in 0..d {
            for j in 0..=i {
                let (re, im) = f(i, j);
                let z = if i == j { c(re, 0.0) } else { c(re, im) };
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        m
    }

    #[test]
    fn clear_margins_are_decided_and_agree_with_f64() {
        // Comfortably PD: diag-dominant with off-diag noise.
        let pd = herm(6, |i, j| {
            if i == j {
                (2.0 + i as f64, 0.0)
            } else {
                (0.05 * (i + j) as f64, 0.02)
            }
        });
        assert_eq!(screen_psd_f32(&pd, TOL), ScreenVerdict::Psd);
        assert!(is_psd_pivoted(&pd, TOL));

        // Clearly indefinite.
        let mut indef = pd.clone();
        indef[(3, 3)] = c(-1.0, 0.0);
        assert_eq!(screen_psd_f32(&indef, TOL), ScreenVerdict::NotPsd);
        assert!(!is_psd_pivoted(&indef, TOL));
    }

    #[test]
    fn exact_diagonal_matrices_never_fall_back() {
        let d = CMat::from_real(3, 3, &[1.0, 0.0, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(screen_psd_f32(&d, TOL), ScreenVerdict::Psd);
        let mut neg = d.clone();
        neg[(2, 2)] = c(-1e-3, 0.0);
        assert_eq!(screen_psd_f32(&neg, TOL), ScreenVerdict::NotPsd);
        // Diagonal decisions mirror the f64 comparison bit for bit.
        assert!(is_psd_pivoted(&d, TOL));
        assert!(!is_psd_pivoted(&neg, TOL));
    }

    #[test]
    fn near_boundary_falls_back_instead_of_guessing() {
        // Eigenvalues 1±b ⇒ λ_min + shift = 0 exactly: inside the f32
        // error band at unit scale, so the screen must abstain.
        let b = 1.0 + TOL;
        let m = herm(2, |i, j| if i == j { (1.0, 0.0) } else { (b, 0.0) });
        assert_eq!(screen_psd_f32(&m, TOL), ScreenVerdict::NearBoundary);
    }

    #[test]
    fn rank_deficient_psd_falls_back() {
        // |+⟩⟨+| projector: PSD with a zero eigenvalue — ambiguous in f32.
        let p = CMat::from_real(2, 2, &[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(screen_psd_f32(&p, TOL), ScreenVerdict::NearBoundary);
        assert!(is_psd_pivoted(&p, TOL));
    }

    #[test]
    fn nan_poisoned_input_abstains() {
        let mut m = CMat::identity(2);
        m[(0, 0)] = c(f64::NAN, 0.0);
        assert_eq!(screen_psd_f32(&m, TOL), ScreenVerdict::NearBoundary);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ScreenVerdict::Psd.label(), "accept");
        assert_eq!(ScreenVerdict::NotPsd.label(), "reject");
        assert_eq!(ScreenVerdict::NearBoundary.label(), "fallback");
    }
}
