//! Error type of the verification engine.

use nqpv_quantum::{LibraryError, RegisterError};
use nqpv_semantics::SemanticsError;
use nqpv_solver::SolverError;
use std::fmt;

/// Errors raised while generating or discharging verification conditions.
#[derive(Debug)]
pub enum VerifError {
    /// Operator library failure (unknown name, wrong kind, …).
    Library(LibraryError),
    /// Qubit resolution failure.
    Register(RegisterError),
    /// Solver input failure.
    Solver(SolverError),
    /// Semantics failure (ranking certificates enumerate the loop body).
    Semantics(SemanticsError),
    /// An operator applied to the wrong number of qubits.
    ArityMismatch {
        /// Operator name.
        op: String,
        /// Its arity.
        expected: usize,
        /// Qubits supplied.
        got: usize,
    },
    /// An assertion with no predicates.
    EmptyAssertion,
    /// Assertion dimension mismatch.
    AssertionShape {
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        got: usize,
    },
    /// Assertion-set blow-up beyond the configured bound.
    SetBlowup {
        /// The configured limit.
        limit: usize,
    },
    /// A while loop lacks the `inv:` annotation the mode requires.
    MissingInvariant,
    /// The supplied loop invariant fails its side condition
    /// (the tool's "not a valid loop invariant" error, Sec. 6.2).
    InvalidInvariant {
        /// Rendered description of the failing check.
        details: String,
    },
    /// Total correctness requested for a loop without a ranking
    /// certificate.
    MissingRanking,
    /// A ranking certificate fails one of the Definition 4.3 conditions.
    InvalidRanking {
        /// Which condition failed.
        details: String,
    },
    /// An interleaved `{ … }` cut assertion is not implied by the computed
    /// verification condition.
    CutFailed {
        /// 0-based index of the cut in source order.
        index: usize,
        /// Rendered verdict.
        details: String,
    },
    /// The user's precondition is not implied by the computed weakest
    /// (liberal) precondition — the correctness formula is rejected.
    PreconditionFailed {
        /// Rendered verdict (the tool's "Order relation not satisfied").
        details: String,
    },
    /// The solver could not resolve an order query either way.
    Inconclusive {
        /// Description of the unresolved query.
        details: String,
    },
    /// The cooperative job deadline expired mid-verification
    /// (see `VcOptions::with_deadline`). `at` names the statement span
    /// that observed the expiry — the partial-trajectory marker.
    Timeout {
        /// Statement span where the expiry was observed
        /// (e.g. `statement 2.0`, `top level`).
        at: String,
    },
}

impl VerifError {
    /// `true` when this error is a cooperative-deadline expiry — either
    /// observed at a statement boundary ([`VerifError::Timeout`]) or
    /// inside the solver ([`SolverError::Timeout`]).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            VerifError::Timeout { .. } | VerifError::Solver(SolverError::Timeout)
        )
    }
}

impl fmt::Display for VerifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifError::Library(e) => write!(f, "{e}"),
            VerifError::Register(e) => write!(f, "{e}"),
            VerifError::Solver(e) => write!(f, "{e}"),
            VerifError::Semantics(e) => write!(f, "{e}"),
            VerifError::ArityMismatch { op, expected, got } => write!(
                f,
                "operator '{op}' acts on {expected} qubit(s) but was applied to {got}"
            ),
            VerifError::EmptyAssertion => write!(f, "assertion must contain a predicate"),
            VerifError::AssertionShape { expected, got } => {
                write!(
                    f,
                    "assertion dimension {got} does not match register {expected}"
                )
            }
            VerifError::SetBlowup { limit } => {
                write!(f, "assertion set exceeded the size limit of {limit}")
            }
            VerifError::MissingInvariant => {
                write!(f, "while loop requires an 'inv:' annotation")
            }
            VerifError::InvalidInvariant { details } => {
                write!(
                    f,
                    "Error:\n  Order relation not satisfied:\n  {details}\nError: The predicate is not a valid loop invariant."
                )
            }
            VerifError::MissingRanking => write!(
                f,
                "total correctness of a while loop requires a ranking certificate"
            ),
            VerifError::InvalidRanking { details } => {
                write!(f, "invalid ranking assertion: {details}")
            }
            VerifError::CutFailed { index, details } => {
                write!(f, "cut assertion #{index} not implied: {details}")
            }
            VerifError::PreconditionFailed { details } => {
                write!(f, "Error:\n  Order relation not satisfied:\n  {details}")
            }
            VerifError::Inconclusive { details } => {
                write!(f, "order query inconclusive: {details}")
            }
            VerifError::Timeout { at } => {
                write!(f, "verification deadline exceeded (at {at})")
            }
        }
    }
}

impl std::error::Error for VerifError {}

impl From<LibraryError> for VerifError {
    fn from(e: LibraryError) -> Self {
        VerifError::Library(e)
    }
}

impl From<RegisterError> for VerifError {
    fn from(e: RegisterError) -> Self {
        VerifError::Register(e)
    }
}

impl From<SolverError> for VerifError {
    fn from(e: SolverError) -> Self {
        VerifError::Solver(e)
    }
}

impl From<SemanticsError> for VerifError {
    fn from(e: SemanticsError) -> Self {
        VerifError::Semantics(e)
    }
}
