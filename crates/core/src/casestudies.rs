//! The paper's case studies as ready-to-verify artifacts.
//!
//! * [`err_corr`] — three-qubit bit-flip quantum error correction
//!   (Ex. 3.1/4.1, Sec. 5.1, Fig. 1): `⊨tot {[ψ]_q} ErrCorr {[ψ]_q}`.
//! * [`deutsch`] — the Deutsch algorithm with a nondeterministic oracle
//!   (Sec. 5.2, Fig. 4): `⊨tot {I} Deutsch {(|00⟩⟨00|+|11⟩⟨11|)_{q,q1}}`.
//! * [`qwalk`] — the nondeterministic quantum walk (Sec. 5.3): its
//!   non-termination under *every* scheduler, `⊨par {I} QWalk {0}`.
//! * [`grover`] — the Grover verification workload used for the Sec. 6.5
//!   performance discussion (13-qubit Grover took the Python tool 90 s).
//! * [`repeat_until_success`] — a total-correctness workout for ranking
//!   certificates (Def. 4.3), the feature the paper leaves unmechanised.

use crate::ranking::RankingCertificate;
use crate::transformer::{Mode, VcOptions};
use crate::verifier::{verify_proof_term, VerifyOutcome};
use crate::{PredicateRegistry, VerifError};
use nqpv_lang::{parse_proof_body, ProofTerm};
use nqpv_linalg::{CMat, CVec};
use nqpv_quantum::{gates, ket, OperatorLibrary};
use std::collections::HashMap;

/// A packaged verification task: program, operators, assertions, mode and
/// (for total correctness) ranking certificates.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Identifier (used in benches and reports).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The proof term (register, pre, program, post).
    pub term: ProofTerm,
    /// Operator library with all referenced operators bound.
    pub library: OperatorLibrary,
    /// Ranking certificates by loop id (total-correctness studies).
    pub rankings: HashMap<usize, RankingCertificate>,
    /// The correctness mode the study targets.
    pub mode: Mode,
}

impl CaseStudy {
    /// Verifies the study with default options (mode taken from the study).
    ///
    /// # Errors
    ///
    /// Propagates verification errors.
    pub fn verify(&self) -> Result<VerifyOutcome, VerifError> {
        self.verify_with(VcOptions {
            mode: self.mode,
            ..VcOptions::default()
        })
    }

    /// Verifies with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates verification errors.
    pub fn verify_with(&self, opts: VcOptions) -> Result<VerifyOutcome, VerifError> {
        let mut registry = PredicateRegistry::new();
        verify_proof_term(
            &self.term,
            &self.library,
            opts,
            &self.rankings,
            &mut registry,
        )
    }
}

/// Three-qubit bit-flip error correction for the input state
/// `|ψ⟩ = α|0⟩ + β|1⟩` (Sec. 5.1). `alpha`/`beta` must form a unit vector.
///
/// # Panics
///
/// Panics if `α² + β² ≠ 1` (real amplitudes suffice for the paper's
/// statement; the verified property is still for *that specific* ψ, as in
/// Eq. 8 which quantifies per-ψ).
pub fn err_corr(alpha: f64, beta: f64) -> CaseStudy {
    assert!(
        (alpha * alpha + beta * beta - 1.0).abs() < 1e-9,
        "amplitudes must be normalised"
    );
    let psi = CVec::new(vec![nqpv_linalg::cr(alpha), nqpv_linalg::cr(beta)]);
    let mut library = OperatorLibrary::with_builtins();
    library
        .insert_predicate("Psi", psi.projector())
        .expect("rank-1 projector is a predicate");
    let term = parse_proof_body(
        &["q", "q1", "q2"],
        "{ Psi[q] }; \
         [q1 q2] := 0; \
         [q q1] *= CX; [q q2] *= CX; \
         ( skip # [q] *= X # [q1] *= X # [q2] *= X ); \
         [q q2] *= CX; [q q1] *= CX; \
         if M01[q2] then if M01[q1] then [q] *= X end end; \
         { Psi[q] }",
    )
    .expect("fixed program parses");
    CaseStudy {
        name: "err_corr".into(),
        description: "three-qubit bit-flip QEC: ⊨tot {[ψ]q} ErrCorr {[ψ]q} (Sec. 5.1)".into(),
        term,
        library,
        rankings: HashMap::new(),
        mode: Mode::Total,
    }
}

/// The Deutsch algorithm with the oracle chosen nondeterministically per
/// measured branch (Sec. 5.2): `⊨tot {I} Deutsch {(|00⟩⟨00|+|11⟩⟨11|)_{q,q1}}`.
pub fn deutsch() -> CaseStudy {
    let mut library = OperatorLibrary::with_builtins();
    let dpost = ket("00").projector().add_mat(&ket("11").projector());
    library
        .insert_predicate("DPost", dpost)
        .expect("projector is a predicate");
    let term = parse_proof_body(
        &["q", "q1", "q2"],
        "{ I[q] }; \
         [q1 q2] := 0; \
         [q1] *= H; [q2] *= X; [q2] *= H; \
         if M01[q] then ( [q1 q2] *= CX # [q1 q2] *= C0X ) \
         else ( skip # [q2] *= X ) end; \
         [q1] *= H; \
         if M01[q1] then skip else skip end; \
         { DPost[q q1] }",
    )
    .expect("fixed program parses");
    CaseStudy {
        name: "deutsch".into(),
        description: "Deutsch algorithm, nondeterministic oracle: ⊨tot {I} Deutsch {…} (Sec. 5.2)"
            .into(),
        term,
        library,
        rankings: HashMap::new(),
        mode: Mode::Total,
    }
}

/// The invariant predicate `N = [|00⟩] + [(|01⟩+|11⟩)/√2]` of Sec. 5.3.
pub fn qwalk_invariant() -> CMat {
    let n00 = ket("00").projector();
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let v = CVec::new(vec![
        nqpv_linalg::cr(0.0),
        nqpv_linalg::cr(s),
        nqpv_linalg::cr(0.0),
        nqpv_linalg::cr(s),
    ]);
    n00.add_mat(&v.projector())
}

/// The nondeterministic quantum walk (Sec. 5.3): `⊨par {I} QWalk {0}` —
/// non-termination under every scheduler, proven with invariant `N`.
pub fn qwalk() -> CaseStudy {
    let mut library = OperatorLibrary::with_builtins();
    library
        .insert_predicate("invN", qwalk_invariant())
        .expect("rank-2 projector is a predicate");
    let term = parse_proof_body(
        &["q1", "q2"],
        "{ I[q1] }; \
         [q1 q2] := 0; \
         { inv : invN[q1 q2] }; \
         while MQWalk[q1 q2] do \
           ( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 ) \
         end; \
         { Zero[q1] }",
    )
    .expect("fixed program parses");
    CaseStudy {
        name: "qwalk".into(),
        description: "nondeterministic quantum walk: ⊨par {I} QWalk {0} (Sec. 5.3)".into(),
        term,
        library,
        rankings: HashMap::new(),
        mode: Mode::Partial,
    }
}

/// Parameters of a Grover verification instance.
#[derive(Debug, Clone, Copy)]
pub struct GroverInstance {
    /// Number of qubits.
    pub n_qubits: usize,
    /// Grover iterations `⌊π/4·√N⌋` (at least 1).
    pub iterations: usize,
    /// Exact success probability `sin²((2k+1)·θ)`, `θ = arcsin(2^{-n/2})`.
    pub success_probability: f64,
}

/// Computes the canonical iteration count and success probability.
pub fn grover_parameters(n_qubits: usize) -> GroverInstance {
    let n = 1usize << n_qubits;
    let theta = (1.0 / (n as f64).sqrt()).asin();
    let iterations = ((std::f64::consts::FRAC_PI_4) / theta).floor().max(1.0) as usize;
    let success_probability = ((2 * iterations + 1) as f64 * theta).sin().powi(2);
    GroverInstance {
        n_qubits,
        iterations,
        success_probability,
    }
}

/// Grover search on `n_qubits` qubits with the all-ones marked state —
/// the verification workload behind the paper's Sec. 6.5 performance test.
/// The verified formula is `⊨tot {(p−ε)·I} Grover {P_marked}` where `p` is
/// the exact success probability; the computed weakest precondition is
/// `p·I`, so verification succeeds with margin `ε`.
///
/// # Panics
///
/// Panics if `n_qubits == 0` or `n_qubits > 16` (matrix sizes explode).
pub fn grover(n_qubits: usize) -> CaseStudy {
    assert!((1..=16).contains(&n_qubits), "1..=16 qubits supported");
    let params = grover_parameters(n_qubits);
    let dim = 1usize << n_qubits;
    let qnames: Vec<String> = (0..n_qubits).map(|i| format!("q{i}")).collect();
    let qrefs: Vec<&str> = qnames.iter().map(String::as_str).collect();

    // H^{⊗n}.
    let mut hn = gates::h();
    for _ in 1..n_qubits {
        hn = hn.kron(&gates::h());
    }
    // Oracle = I − 2|m⟩⟨m| for m = |1…1⟩.
    let marked = CVec::basis(dim, dim - 1);
    let mut oracle = CMat::identity(dim);
    oracle = oracle.sub_mat(&marked.projector().scale_re(2.0));
    // Diffusion = Hⁿ·(2|0⟩⟨0| − I)·Hⁿ.
    let zero_proj = CVec::basis(dim, 0).projector();
    let refl = zero_proj.scale_re(2.0).sub_mat(&CMat::identity(dim));
    let diffusion = hn.mul(&refl).mul(&hn);

    let mut library = OperatorLibrary::with_builtins();
    library.insert_unitary("HN", hn).expect("H^n is unitary");
    library
        .insert_unitary("Oracle", oracle)
        .expect("oracle is unitary");
    library
        .insert_unitary("Diff", diffusion)
        .expect("diffusion is unitary");
    library
        .insert_predicate("Marked", marked.projector())
        .expect("projector is a predicate");
    let margin = 1e-9;
    library
        .insert_predicate(
            "PreG",
            CMat::identity(dim).scale_re((params.success_probability - margin).max(0.0)),
        )
        .expect("scaled identity is a predicate");

    let all = qnames.join(" ");
    let mut body = format!("{{ PreG[{all}] }}; [{all}] := 0; [{all}] *= HN; ");
    for _ in 0..params.iterations {
        body.push_str(&format!("[{all}] *= Oracle; [{all}] *= Diff; "));
    }
    body.push_str(&format!("{{ Marked[{all}] }}"));
    let term = parse_proof_body(&qrefs, &body).expect("generated program parses");
    CaseStudy {
        name: format!("grover_{n_qubits}q"),
        description: format!(
            "Grover on {n_qubits} qubits, {} iterations, success prob {:.6}",
            params.iterations, params.success_probability
        ),
        term,
        library,
        rankings: HashMap::new(),
        mode: Mode::Total,
    }
}

/// Three-qubit *phase-flip* error correction: the bit-flip code of
/// Sec. 5.1 conjugated by Hadamards, protecting against a nondeterministic
/// `Z` error on any single qubit. Not in the paper — included to show the
/// verification pipeline generalises beyond the paper's exact circuits.
///
/// # Panics
///
/// Panics if `α² + β² ≠ 1`.
pub fn phase_flip_corr(alpha: f64, beta: f64) -> CaseStudy {
    assert!(
        (alpha * alpha + beta * beta - 1.0).abs() < 1e-9,
        "amplitudes must be normalised"
    );
    let psi = CVec::new(vec![nqpv_linalg::cr(alpha), nqpv_linalg::cr(beta)]);
    let mut library = OperatorLibrary::with_builtins();
    library
        .insert_predicate("Psi", psi.projector())
        .expect("rank-1 projector is a predicate");
    let term = parse_proof_body(
        &["q", "q1", "q2"],
        "{ Psi[q] }; \
         [q1 q2] := 0; \
         [q q1] *= CX; [q q2] *= CX; \
         [q] *= H; [q1] *= H; [q2] *= H; \
         ( skip # [q] *= Z # [q1] *= Z # [q2] *= Z ); \
         [q] *= H; [q1] *= H; [q2] *= H; \
         [q q2] *= CX; [q q1] *= CX; \
         if M01[q2] then if M01[q1] then [q] *= X end end; \
         { Psi[q] }",
    )
    .expect("fixed program parses");
    CaseStudy {
        name: "phase_flip_corr".into(),
        description: "three-qubit phase-flip QEC: ⊨tot {[ψ]q} PhaseCorr {[ψ]q} (extension)".into(),
        term,
        library,
        rankings: HashMap::new(),
        mode: Mode::Total,
    }
}

/// Quantum teleportation with a *nondeterministic correction order*: the
/// `X` and `Z` Pauli fix-ups act on different syndrome bits and commute,
/// so an implementation may apply them in either order — modelled as a
/// demonic choice. Verifies `⊨tot {[ψ]_q} Teleport {[ψ]_b}`: the state
/// arrives on `b` under every scheduling. Not in the paper; exercises
/// measurement-conditioned corrections and choice-insensitivity.
///
/// # Panics
///
/// Panics if `α² + β² ≠ 1`.
pub fn teleport(alpha: f64, beta: f64) -> CaseStudy {
    assert!(
        (alpha * alpha + beta * beta - 1.0).abs() < 1e-9,
        "amplitudes must be normalised"
    );
    let psi = CVec::new(vec![nqpv_linalg::cr(alpha), nqpv_linalg::cr(beta)]);
    let mut library = OperatorLibrary::with_builtins();
    library
        .insert_predicate("Psi", psi.projector())
        .expect("rank-1 projector is a predicate");
    let term = parse_proof_body(
        &["q", "a", "b"],
        "{ Psi[q] }; \
         [a b] := 0; [a] *= H; [a b] *= CX; \
         [q a] *= CX; [q] *= H; \
         ( if M01[a] then [b] *= X end; if M01[q] then [b] *= Z end \
         # if M01[q] then [b] *= Z end; if M01[a] then [b] *= X end ); \
         { Psi[b] }",
    )
    .expect("fixed program parses");
    CaseStudy {
        name: "teleport".into(),
        description:
            "teleportation, nondeterministic correction order: ⊨tot {[ψ]q} Teleport {[ψ]b}".into(),
        term,
        library,
        rankings: HashMap::new(),
        mode: Mode::Total,
    }
}

/// Repeat-until-success: `q := 0; q *= H; while M01[q] do q *= H end` —
/// terminates almost surely in `|0⟩`; `⊨tot {I} RUS {P0}` discharged with
/// the geometric ranking certificate `R_0 = I, R_1 = |1⟩⟨1|, γ = 1/2`
/// (the finite form of the Eq.-18 completeness witness).
pub fn repeat_until_success() -> CaseStudy {
    let library = OperatorLibrary::with_builtins();
    let term = parse_proof_body(
        &["q"],
        "{ I[q] }; [q] := 0; [q] *= H; { inv : I[q] }; \
         while M01[q] do [q] *= H end; { P0[q] }",
    )
    .expect("fixed program parses");
    let mut rankings = HashMap::new();
    rankings.insert(
        0,
        RankingCertificate::geometric(2, ket("1").projector(), 0.5),
    );
    CaseStudy {
        name: "repeat_until_success".into(),
        description: "RUS loop: ⊨tot {I} RUS {P0} via a geometric ranking certificate".into(),
        term,
        library,
        rankings,
        mode: Mode::Total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn err_corr_verifies_totally() {
        for (a, b) in [
            (1.0, 0.0),
            (0.6, 0.8),
            (
                std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
            ),
        ] {
            let study = err_corr(a, b);
            let outcome = study.verify().unwrap();
            assert!(
                outcome.status.verified(),
                "α={a}, β={b}: {:?}",
                outcome.status
            );
        }
    }

    #[test]
    fn deutsch_verifies_totally() {
        let outcome = deutsch().verify().unwrap();
        assert!(outcome.status.verified(), "{:?}", outcome.status);
    }

    #[test]
    fn qwalk_verifies_partially() {
        let outcome = qwalk().verify().unwrap();
        assert!(outcome.status.verified(), "{:?}", outcome.status);
    }

    #[test]
    fn grover_small_instances_verify() {
        for n in 1..=4 {
            let study = grover(n);
            let outcome = study.verify().unwrap();
            assert!(outcome.status.verified(), "n={n}: {:?}", outcome.status);
        }
    }

    #[test]
    fn grover_parameters_match_closed_form() {
        let p2 = grover_parameters(2);
        // N=4: θ=π/6, k=⌊(π/4)/(π/6)⌋=1, success = sin²(3·π/6) = 1.
        assert_eq!(p2.iterations, 1);
        assert!((p2.success_probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rus_verifies_with_ranking() {
        let outcome = repeat_until_success().verify().unwrap();
        assert!(outcome.status.verified(), "{:?}", outcome.status);
    }

    #[test]
    fn teleport_verifies_for_both_correction_orders() {
        for (a, b) in [(1.0, 0.0), (0.6, 0.8)] {
            let outcome = teleport(a, b).verify().unwrap();
            assert!(
                outcome.status.verified(),
                "α={a}, β={b}: {:?}",
                outcome.status
            );
        }
    }

    #[test]
    fn teleport_without_z_correction_fails() {
        let mut study = teleport(0.6, 0.8);
        study.term = parse_proof_body(
            &["q", "a", "b"],
            "{ Psi[q] }; \
             [a b] := 0; [a] *= H; [a b] *= CX; \
             [q a] *= CX; [q] *= H; \
             if M01[a] then [b] *= X end; \
             { Psi[b] }",
        )
        .unwrap();
        let outcome = study.verify().unwrap();
        assert!(!outcome.status.verified());
    }

    #[test]
    fn phase_flip_code_verifies_totally() {
        for (a, b) in [(1.0, 0.0), (0.6, 0.8)] {
            let outcome = phase_flip_corr(a, b).verify().unwrap();
            assert!(
                outcome.status.verified(),
                "α={a}, β={b}: {:?}",
                outcome.status
            );
        }
    }

    #[test]
    fn phase_flip_code_without_hadamards_fails() {
        // Removing the basis change leaves Z errors uncorrected.
        let mut study = phase_flip_corr(0.6, 0.8);
        study.term = parse_proof_body(
            &["q", "q1", "q2"],
            "{ Psi[q] }; \
             [q1 q2] := 0; \
             [q q1] *= CX; [q q2] *= CX; \
             ( skip # [q] *= Z # [q1] *= Z # [q2] *= Z ); \
             [q q2] *= CX; [q q1] *= CX; \
             if M01[q2] then if M01[q1] then [q] *= X end end; \
             { Psi[q] }",
        )
        .unwrap();
        let outcome = study.verify().unwrap();
        assert!(!outcome.status.verified());
    }

    #[test]
    fn qec_fails_for_wrong_postcondition() {
        // Claiming the *orthogonal* state is preserved must fail.
        let mut study = err_corr(0.6, 0.8);
        let ortho = CVec::new(vec![nqpv_linalg::cr(0.8), nqpv_linalg::cr(-0.6)]);
        study
            .library
            .insert_predicate("PsiOrtho", ortho.projector())
            .unwrap();
        let body = "{ Psi[q] }; \
             [q1 q2] := 0; \
             [q q1] *= CX; [q q2] *= CX; \
             ( skip # [q] *= X # [q1] *= X # [q2] *= X ); \
             [q q2] *= CX; [q q1] *= CX; \
             if M01[q2] then if M01[q1] then [q] *= X end end; \
             { PsiOrtho[q] }";
        study.term = parse_proof_body(&["q", "q1", "q2"], body).unwrap();
        let outcome = study.verify().unwrap();
        assert!(!outcome.status.verified());
    }
}
