//! The paper's Sec. 5 proofs replayed as explicit Fig. 3 derivations.
//!
//! [`crate::verifier`] *computes* weakest preconditions; this module
//! instead builds the exact proof trees the paper writes out by hand —
//! (Init), (Unit), (NDet) with (Imp)-weakened branches, nested (Meas),
//! and (While) — and pushes them through the rule checker
//! [`crate::proof::check_proof`]. Getting the same formulas out of both
//! pipelines is a strong internal-consistency check of the logic.

use crate::assertion::Assertion;
use crate::error::VerifError;
use crate::proof::{check_proof, Formula, ProofNode};
use crate::transformer::Mode;
use nqpv_linalg::{adjoint_conjugate_gate, embed, CVec};
use nqpv_quantum::{gates, ket, OperatorLibrary, Register};
use nqpv_solver::LownerOptions;

/// Builds and checks the Sec. 5.1 derivation of
/// `⊢tot {[ψ]_q} ErrCorr {[ψ]_q}` for `|ψ⟩ = α|0⟩ + β|1⟩`, returning the
/// checked tree and its established formula.
///
/// The derivation follows the paper's proof outline literally:
///
/// 1. (Init)+(Unit) thread the encoding `|ψ00⟩ ↦ α|000⟩+β|111⟩`;
/// 2. (Skip)/(Unit) give `{Ψ₀} Sᵢ {Mᵢ}` for the four error branches, each
///    weakened to the common postcondition `M₁+M₂+M₃+M₄` by (Imp);
/// 3. (NDet) folds the four branches;
/// 4. (Unit) threads the decode CNOTs;
/// 5. nested (Meas) handles the syndrome conditionals.
///
/// # Errors
///
/// Propagates rule-checking failures (none for valid `α, β`).
///
/// # Panics
///
/// Panics if `α² + β² ≠ 1`.
pub fn err_corr_derivation(
    alpha: f64,
    beta: f64,
    lib: &OperatorLibrary,
    reg: &Register,
    opts: LownerOptions,
) -> Result<(ProofNode, Formula), VerifError> {
    assert!(
        (alpha * alpha + beta * beta - 1.0).abs() < 1e-9,
        "amplitudes must be normalised"
    );
    let n = reg.n_qubits();
    debug_assert_eq!(n, 3, "ErrCorr uses the register [q, q1, q2]");
    let dim = reg.dim();
    let check = |node: &ProofNode| check_proof(node, Mode::Total, lib, reg, opts);

    // ψ on q, embedded over the full register.
    let psi = CVec::new(vec![nqpv_linalg::cr(alpha), nqpv_linalg::cr(beta)]);
    let psi_full = embed(&psi.projector(), &[0], n);
    let post_final = Assertion::from_ops(dim, vec![psi_full.clone()])?;

    // --- 5. Syndrome measurement (backwards: build it first). -----------
    let inner_meas = ProofNode::Meas {
        meas: "M01".into(),
        qubits: vec!["q1".into()],
        then_proof: Box::new(ProofNode::Unit {
            qubits: vec!["q".into()],
            op: "X".into(),
            post: post_final.clone(),
        }),
        else_proof: Box::new(ProofNode::Skip {
            theta: post_final.clone(),
        }),
    };
    let outer_meas = ProofNode::Meas {
        meas: "M01".into(),
        qubits: vec!["q2".into()],
        then_proof: Box::new(inner_meas),
        else_proof: Box::new(ProofNode::Skip {
            theta: post_final.clone(),
        }),
    };
    let f_meas = check(&outer_meas)?;

    // --- 4. Decode CNOTs (program order: CX(q,q2) then CX(q,q1)). -------
    let dec_qq1 = ProofNode::Unit {
        qubits: vec!["q".into(), "q1".into()],
        op: "CX".into(),
        post: f_meas.pre.clone(),
    };
    let f_dec_qq1 = check(&dec_qq1)?;
    let dec_qq2 = ProofNode::Unit {
        qubits: vec!["q".into(), "q2".into()],
        op: "CX".into(),
        post: f_dec_qq1.pre.clone(),
    };
    let f_dec_qq2 = check(&dec_qq2)?;
    let m_sum_assertion = f_dec_qq2.pre.clone();

    // --- 2./3. The four error branches, (Imp)-weakened, then (NDet). ----
    // Ψ₀ = [α|000⟩+β|111⟩]; Mᵢ are its images under the branch unitaries.
    let enc0 = {
        let v000 = ket("000").scale(nqpv_linalg::cr(alpha));
        let v111 = ket("111").scale(nqpv_linalg::cr(beta));
        (&v000 + &v111).projector()
    };
    let psi0 = Assertion::from_ops(dim, vec![enc0.clone()])?;
    let x = gates::x();
    let branch = |positions: Option<usize>| -> Result<ProofNode, VerifError> {
        match positions {
            None => Ok(ProofNode::imp(
                psi0.clone(),
                ProofNode::Skip {
                    theta: psi0.clone(),
                },
                m_sum_assertion.clone(),
            )),
            Some(p) => {
                let qname = reg.names()[p].clone();
                let m_i = adjoint_conjugate_gate(&x, &[p], n, &enc0); // X M X = image
                let m_i_assertion = Assertion::from_ops(dim, vec![m_i])?;
                Ok(ProofNode::imp(
                    psi0.clone(),
                    ProofNode::Unit {
                        qubits: vec![qname],
                        op: "X".into(),
                        post: m_i_assertion,
                    },
                    m_sum_assertion.clone(),
                ))
            }
        }
    };
    let ndet_node = ProofNode::ndet_all(vec![
        branch(None)?,
        branch(Some(0))?,
        branch(Some(1))?,
        branch(Some(2))?,
    ]);
    let f_ndet = check(&ndet_node)?;
    debug_assert!(f_ndet.pre.approx_set_eq(&psi0, 1e-8));

    // --- 1. Encoding (backwards from Ψ₀). --------------------------------
    let enc_qq2 = ProofNode::Unit {
        qubits: vec!["q".into(), "q2".into()],
        op: "CX".into(),
        post: psi0.clone(),
    };
    let f_enc_qq2 = check(&enc_qq2)?;
    let enc_qq1 = ProofNode::Unit {
        qubits: vec!["q".into(), "q1".into()],
        op: "CX".into(),
        post: f_enc_qq2.pre.clone(),
    };
    let f_enc_qq1 = check(&enc_qq1)?;
    let init = ProofNode::Init {
        qubits: vec!["q1".into(), "q2".into()],
        post: f_enc_qq1.pre.clone(),
    };

    // --- Assemble in program order. --------------------------------------
    let full = ProofNode::seq_all(vec![
        init, enc_qq1, enc_qq2, ndet_node, dec_qq2, dec_qq1, outer_meas,
    ]);
    let formula = check(&full)?;
    Ok((full, formula))
}

/// Builds and checks the Sec. 5.3 derivation of
/// `⊢par {I} QWalk {0}` (Eq. 15): the loop invariant
/// `N = [|00⟩] + [(|01⟩+|11⟩)/√2]` is threaded through both walk orders
/// with (Unit)+(Seq), folded by (NDet) (Eq. 16), closed by (While), and
/// initialised by (Init).
///
/// # Errors
///
/// Propagates rule-checking failures.
pub fn qwalk_derivation(
    lib: &OperatorLibrary,
    reg: &Register,
    opts: LownerOptions,
) -> Result<(ProofNode, Formula), VerifError> {
    let dim = reg.dim();
    debug_assert_eq!(dim, 4, "QWalk uses the register [q1, q2]");
    let check = |node: &ProofNode| check_proof(node, Mode::Partial, lib, reg, opts);

    let inv_n = crate::casestudies::qwalk_invariant();
    let inv = Assertion::from_ops(dim, vec![inv_n.clone()])?;
    let zero = Assertion::zero(dim);

    // Branch W1;W2 — the paper's first (Unit)² chain.
    let w2 = lib.unitary("W2")?.clone();
    let mid_12 = Assertion::from_ops(dim, vec![w2.adjoint_conjugate(&inv_n)])?;
    let branch_12 = ProofNode::seq(
        ProofNode::Unit {
            qubits: vec!["q1".into(), "q2".into()],
            op: "W1".into(),
            post: mid_12.clone(),
        },
        ProofNode::Unit {
            qubits: vec!["q1".into(), "q2".into()],
            op: "W2".into(),
            post: inv.clone(),
        },
    );
    let f_12 = check(&branch_12)?;
    debug_assert!(
        f_12.pre.approx_set_eq(&inv, 1e-8),
        "W2W1 must fix the invariant subspace"
    );

    // Branch W2;W1 — the second chain.
    let w1 = lib.unitary("W1")?.clone();
    let mid_21 = Assertion::from_ops(dim, vec![w1.adjoint_conjugate(&inv_n)])?;
    let branch_21 = ProofNode::seq(
        ProofNode::Unit {
            qubits: vec!["q1".into(), "q2".into()],
            op: "W2".into(),
            post: mid_21,
        },
        ProofNode::Unit {
            qubits: vec!["q1".into(), "q2".into()],
            op: "W1".into(),
            post: inv.clone(),
        },
    );

    // (NDet): both branches prove {N} body {N} — but the (While) premise
    // needs postcondition P⁰(Ψ)+P¹(Θ) = {P⁰·0·P⁰ + P¹·N·P¹} = {N} since
    // N's support avoids |10⟩. The sets coincide, so no (Imp) is needed —
    // exactly the paper's Eq. 16.
    let body = ProofNode::ndet(branch_12, branch_21);

    let while_node = ProofNode::While {
        meas: "MQWalk".into(),
        qubits: vec!["q1".into(), "q2".into()],
        invariant: inv.clone(),
        post: zero,
        body_proof: Box::new(body),
        ranking: None,
    };
    let f_while = check(&while_node)?;

    // (Init): {Σᵢ |i⟩⟨00| N |00⟩⟨i|} = {I} since ⟨00|N|00⟩ = 1.
    let init = ProofNode::Init {
        qubits: vec!["q1".into(), "q2".into()],
        post: f_while.pre.clone(),
    };
    let full = ProofNode::seq(init, while_node);
    let formula = check(&full)?;
    Ok((full, formula))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctness::{holds_on_state, sample_states, Sense};
    use nqpv_linalg::CMat;
    use nqpv_semantics::{denote_bounded, DenoteOptions};

    #[test]
    fn sec51_derivation_checks_and_matches_the_paper_formula() {
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q", "q1", "q2"]).unwrap();
        for (a, b) in [(1.0, 0.0), (0.6, 0.8)] {
            let (_, formula) =
                err_corr_derivation(a, b, &lib, &reg, LownerOptions::default()).unwrap();
            // {[ψ]_q ⊗ I} ErrCorr {[ψ]_q ⊗ I}.
            let psi = CVec::new(vec![nqpv_linalg::cr(a), nqpv_linalg::cr(b)]);
            let expected = embed(&psi.projector(), &[0], 3);
            assert_eq!(formula.pre.len(), 1);
            assert!(
                formula.pre.ops()[0].approx_eq(&expected, 1e-9),
                "derived precondition is not [ψ]⊗I for α={a}, β={b}"
            );
            assert!(formula.post.ops()[0].approx_eq(&expected, 1e-9));
        }
    }

    #[test]
    fn sec51_derivation_is_semantically_sound() {
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q", "q1", "q2"]).unwrap();
        let (_, formula) =
            err_corr_derivation(0.6, 0.8, &lib, &reg, LownerOptions::default()).unwrap();
        let sem = nqpv_semantics::denote(&formula.stmt, &lib, &reg).unwrap();
        for rho in sample_states(8, 6, 808) {
            assert!(holds_on_state(
                Sense::Total,
                &sem,
                &rho,
                &formula.pre,
                &formula.post,
                1e-8
            ));
        }
    }

    #[test]
    fn sec51_derivation_agrees_with_the_backward_verifier() {
        // Same program, two pipelines: proof-tree replay vs wp computation.
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q", "q1", "q2"]).unwrap();
        let (_, formula) =
            err_corr_derivation(0.6, 0.8, &lib, &reg, LownerOptions::default()).unwrap();
        let wp = crate::transformer::precondition(
            &formula.stmt,
            &formula.post,
            &lib,
            &reg,
            crate::transformer::VcOptions {
                mode: Mode::Total,
                ..Default::default()
            },
            &std::collections::HashMap::new(),
        )
        .unwrap();
        // The derivation's precondition must entail the computed wp.
        assert!(formula
            .pre
            .le_inf(&wp, LownerOptions::default())
            .unwrap()
            .holds());
    }

    #[test]
    fn sec53_derivation_establishes_eq_15() {
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q1", "q2"]).unwrap();
        let (_, formula) = qwalk_derivation(&lib, &reg, LownerOptions::default()).unwrap();
        // {I} QWalk {0}.
        assert_eq!(formula.pre.len(), 1);
        assert!(formula.pre.ops()[0].approx_eq(&CMat::identity(4), 1e-9));
        assert!(formula.post.ops()[0].is_zero(1e-12));
        assert!(matches!(formula.stmt, nqpv_lang::Stmt::Seq(_)));
    }

    #[test]
    fn sec53_derivation_is_semantically_sound_partially() {
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q1", "q2"]).unwrap();
        let (_, formula) = qwalk_derivation(&lib, &reg, LownerOptions::default()).unwrap();
        let sem = denote_bounded(
            &formula.stmt,
            &lib,
            &reg,
            DenoteOptions {
                loop_depth: 6,
                max_set: 4096,
                dedupe: true,
            },
        )
        .unwrap();
        for rho in sample_states(4, 5, 909) {
            assert!(holds_on_state(
                Sense::Partial,
                &sem,
                &rho,
                &formula.pre,
                &formula.post,
                1e-8
            ));
        }
    }

    #[test]
    fn wrong_branch_postcondition_breaks_the_derivation() {
        // Tamper with the (Imp) weakening target: use M₂ alone instead of
        // the full sum — the (NDet) interface must then fail.
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q", "q1", "q2"]).unwrap();
        let dim = 8;
        let enc0 = {
            let v000 = ket("000").scale(nqpv_linalg::cr(0.6));
            let v111 = ket("111").scale(nqpv_linalg::cr(0.8));
            (&v000 + &v111).projector()
        };
        let psi0 = Assertion::from_ops(dim, vec![enc0.clone()]).unwrap();
        let m2 = adjoint_conjugate_gate(&gates::x(), &[0], 3, &enc0);
        let m2a = Assertion::from_ops(dim, vec![m2]).unwrap();
        // Branch "skip" weakened to {M2}: Ψ₀ ⋢ M2, so (Imp) itself fails.
        let bad = ProofNode::imp(psi0.clone(), ProofNode::Skip { theta: psi0 }, m2a);
        assert!(check_proof(&bad, Mode::Total, &lib, &reg, LownerOptions::default()).is_err());
    }
}
