//! Angelic nondeterminism — the paper's Sec. 7 future work, made concrete.
//!
//! The paper's correctness is *demonic*: `Exp(ρ ⊨ Θ) = inf_M tr(Mρ)` and
//! the adversary picks the worst branch of `[[S]]`. The angelic reading
//! flips both quantifiers: satisfaction is `sup_M tr(Mρ)` and the
//! scheduler *cooperates*, picking the best branch:
//!
//! ```text
//! ⊨ang {Θ} S {Ψ}  ⇔  ∀ρ. Expsup(ρ ⊨ Θ) ≤ sup { Expsup(σ ⊨ Ψ) : σ ∈ [[S]](ρ) }
//! ```
//!
//! The matching assertion order is `⊑_sup` (decided by
//! [`nqpv_solver::assertion_le_sup`] through the same minimax engine as
//! `⊑_inf`). This module provides the semantic checking machinery and the
//! angelic analogue of the nondeterminism proof rule, so the classic
//! demonic/angelic gap (`skip □ q*=X` *can* reach `|1⟩` from `|0⟩` but
//! need not) is machine-checkable.

use crate::assertion::Assertion;
use crate::error::VerifError;
use nqpv_linalg::CMat;
use nqpv_quantum::SuperOp;
use nqpv_solver::{assertion_le_sup, LownerOptions, Verdict};

/// Angelic satisfaction `Expsup(ρ ⊨ Θ) = sup_{M∈Θ} tr(Mρ)` — the
/// optimistic dual of Definition 4.1. Factored predicates evaluate as
/// `tr(V†ρV)` without materialising the operator.
pub fn exp_sup(rho: &CMat, theta: &Assertion) -> f64 {
    theta
        .ops()
        .iter()
        .map(|m| m.expectation(rho))
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The angelic analogue of Definition 4.2 (total sense), evaluated on one
/// state against an explicit semantic set: the scheduler is allowed to
/// pick the *best* branch.
pub fn holds_angelic_on_state(
    semantics: &[SuperOp],
    rho: &CMat,
    pre: &Assertion,
    post: &Assertion,
    tol: f64,
) -> bool {
    let lhs = exp_sup(rho, pre);
    let rhs = semantics
        .iter()
        .map(|e| exp_sup(&e.apply(rho), post))
        .fold(f64::NEG_INFINITY, f64::max);
    lhs <= rhs + tol
}

/// Decides the angelic assertion order `Θ ⊑_sup Ψ`. Pairs of factored
/// predicates try the Gram-eigenproblem fast path first (the `⊑_sup`
/// certificate is `∀M∈Θ ∃N∈Ψ: M ⊑ N`), falling back to the dense minimax
/// solver.
///
/// # Errors
///
/// Wraps solver input failures.
pub fn le_sup(
    theta: &Assertion,
    psi: &Assertion,
    opts: LownerOptions,
) -> Result<Verdict, VerifError> {
    {
        let mut span = opts
            .tracer
            .span(nqpv_telemetry::Phase::Solver, "obligation");
        if theta.fast_le_sup_holds(psi, opts.eps) {
            span.classify("solver_path", "factored-gram");
            span.arg("outcome", nqpv_telemetry::ArgValue::Static("holds"));
            return Ok(Verdict::Holds);
        }
        // Undecided: the dense solver records the real spans.
        span.cancel();
    }
    assertion_le_sup(&theta.dense_ops(), &psi.dense_ops(), opts).map_err(VerifError::Solver)
}

/// [`le_sup`] through an optional verdict cache (the `⊑_sup` twin of
/// [`Assertion::le_inf_cached`]); keys carry a distinct tag so the two
/// orders never alias.
///
/// # Errors
///
/// Same as [`le_sup`]. Solver errors are never cached.
pub fn le_sup_cached(
    theta: &Assertion,
    psi: &Assertion,
    opts: LownerOptions,
    cache: Option<&dyn crate::cache::TransformerCache>,
) -> Result<Verdict, VerifError> {
    let Some(cache) = cache else {
        return le_sup(theta, psi, opts);
    };
    let key = crate::cache::verdict_key(crate::cache::VERDICT_TAG_SUP, theta, psi, &opts);
    let hit = {
        let mut span = opts
            .tracer
            .span(nqpv_telemetry::Phase::Cache, "verdict_tier");
        let hit = cache.get_verdict(key);
        span.classify("verdict_tier", if hit.is_some() { "hit" } else { "miss" });
        hit
    };
    if let Some(v) = hit {
        return Ok(v);
    }
    let v = le_sup(theta, psi, opts)?;
    cache.put_verdict(key, &v);
    Ok(v)
}

/// Angelic weakest precondition of a *branch set* for a singleton-style
/// postcondition set: under the angelic reading, the wp of `S₀ □ S₁` is
/// still the element-wise union `wp.S₀.Ψ ∪ wp.S₁.Ψ` — but it must be
/// interpreted through `Expsup`/`⊑_sup` rather than `Exp`/`⊑_inf`. This
/// helper packages the union so call sites stay explicit about the
/// reading.
///
/// # Errors
///
/// Returns [`VerifError::AssertionShape`] on mismatched dimensions.
pub fn angelic_choice_pre(a: &Assertion, b: &Assertion) -> Result<Assertion, VerifError> {
    a.union(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctness::{holds_on_state, sample_states, Sense};
    use nqpv_lang::parse_stmt;
    use nqpv_quantum::{ket, OperatorLibrary, Register};
    use nqpv_semantics::denote;

    fn bitflip_semantics() -> Vec<SuperOp> {
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q"]).unwrap();
        let s = parse_stmt("( skip # [q] *= X )").unwrap();
        denote(&s, &lib, &reg).unwrap()
    }

    #[test]
    fn exp_sup_is_the_max() {
        let theta =
            Assertion::from_ops(2, vec![ket("0").projector(), ket("1").projector()]).unwrap();
        let rho = ket("0").projector();
        assert!((exp_sup(&rho, &theta) - 1.0).abs() < 1e-12);
        assert!((theta.expectation(&rho) - 0.0).abs() < 1e-12); // demonic inf
    }

    #[test]
    fn angelic_and_demonic_differ_on_the_bitflip_choice() {
        // {P1} (skip □ X) {P1}: demonically FALSE from |1⟩ (adversary flips
        // to |0⟩), angelically TRUE (scheduler keeps it).
        let sem = bitflip_semantics();
        let p1 = Assertion::from_ops(2, vec![ket("1").projector()]).unwrap();
        let rho = ket("1").projector();
        assert!(!holds_on_state(Sense::Total, &sem, &rho, &p1, &p1, 1e-9));
        assert!(holds_angelic_on_state(&sem, &rho, &p1, &p1, 1e-9));
    }

    #[test]
    fn angelic_reachability_of_the_flipped_state() {
        // From |0⟩ the angelic scheduler can reach |1⟩: {P0} S {P1} holds
        // angelically but not demonically.
        let sem = bitflip_semantics();
        let p0 = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
        let p1 = Assertion::from_ops(2, vec![ket("1").projector()]).unwrap();
        for rho in sample_states(2, 8, 321) {
            assert!(holds_angelic_on_state(&sem, &rho, &p0, &p1, 1e-9));
        }
        let rho0 = ket("0").projector();
        assert!(!holds_on_state(Sense::Total, &sem, &rho0, &p0, &p1, 1e-9));
    }

    #[test]
    fn le_sup_connects_to_angelic_satisfaction() {
        // Θ ⊑_sup Ψ ⇔ ∀ρ: Expsup(ρ⊨Θ) ≤ Expsup(ρ⊨Ψ); spot-check the
        // solver verdict against sampled states.
        let theta =
            Assertion::from_ops(2, vec![nqpv_linalg::CMat::identity(2).scale_re(0.5)]).unwrap();
        let psi = Assertion::from_ops(2, vec![ket("0").projector(), ket("1").projector()]).unwrap();
        let verdict = le_sup(&theta, &psi, LownerOptions::default()).unwrap();
        assert!(verdict.holds());
        for rho in sample_states(2, 10, 77) {
            assert!(exp_sup(&rho, &theta) <= exp_sup(&rho, &psi) + 1e-9);
        }
        // Converse direction fails, witnessed by the solver.
        let v2 = le_sup(&psi, &theta, LownerOptions::default()).unwrap();
        match v2 {
            Verdict::Violated(viol) => {
                let lhs = exp_sup(&viol.witness, &psi);
                let rhs = exp_sup(&viol.witness, &theta);
                assert!(
                    lhs > rhs + 1e-3,
                    "witness does not separate: {lhs} vs {rhs}"
                );
            }
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn cached_orders_share_the_verdict_store_but_not_keys() {
        use crate::cache::{CacheKey, TransformerCache};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Mutex;

        /// Minimal verdict-tier cache double (the full concurrent
        /// implementation lives in `nqpv-engine`).
        #[derive(Default)]
        struct VerdictStore {
            verdicts: Mutex<std::collections::HashMap<CacheKey, Verdict>>,
            hits: AtomicU64,
        }

        impl TransformerCache for VerdictStore {
            fn get(&self, _key: CacheKey) -> Option<crate::transformer::Annotated> {
                None
            }
            fn put(&self, _key: CacheKey, _value: &crate::transformer::Annotated) {}
            fn get_verdict(&self, key: CacheKey) -> Option<Verdict> {
                let found = self.verdicts.lock().unwrap().get(&key).cloned();
                if found.is_some() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                found
            }
            fn put_verdict(&self, key: CacheKey, verdict: &Verdict) {
                self.verdicts.lock().unwrap().insert(key, verdict.clone());
            }
        }

        let cache = VerdictStore::default();
        let theta =
            Assertion::from_ops(2, vec![nqpv_linalg::CMat::identity(2).scale_re(0.5)]).unwrap();
        let psi = Assertion::from_ops(2, vec![ket("0").projector(), ket("1").projector()]).unwrap();
        let opts = LownerOptions::default();

        // First ⊑_sup query computes and stores; the second hits.
        assert!(le_sup_cached(&theta, &psi, opts, Some(&cache))
            .unwrap()
            .holds());
        assert_eq!(cache.hits.load(Ordering::Relaxed), 0);
        assert!(le_sup_cached(&theta, &psi, opts, Some(&cache))
            .unwrap()
            .holds());
        assert_eq!(cache.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.verdicts.lock().unwrap().len(), 1);

        // The ⊑_inf order on the *same* operands carries a distinct tag:
        // no aliasing, a second entry appears (and the verdict differs —
        // inf over {P0, P1} drops to 0 on basis states, so ⊑_inf fails).
        assert!(!theta
            .le_inf_cached(&psi, opts, Some(&cache))
            .unwrap()
            .holds());
        assert_eq!(cache.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.verdicts.lock().unwrap().len(), 2);

        // Cached and fresh verdicts agree.
        assert_eq!(
            le_sup_cached(&theta, &psi, opts, Some(&cache))
                .unwrap()
                .holds(),
            le_sup(&theta, &psi, opts).unwrap().holds()
        );
    }

    #[test]
    fn angelic_choice_pre_is_the_union() {
        let a = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
        let b = Assertion::from_ops(2, vec![ket("1").projector()]).unwrap();
        let u = angelic_choice_pre(&a, &b).unwrap();
        assert_eq!(u.len(), 2);
        // Angelic satisfaction of the union is the max of the parts —
        // the (NDet) rule is sound in the angelic reading as well.
        let rho = ket("1").projector();
        assert!((exp_sup(&rho, &u) - 1.0).abs() < 1e-12);
    }
}
