//! Semantic correctness (Definition 4.2) and its numerical checking.
//!
//! `⊨tot {Θ} S {Ψ}` iff for every state `ρ`:
//! `Exp(ρ ⊨ Θ) ≤ inf { Exp(σ ⊨ Ψ) : σ ∈ [[S]](ρ) }`;
//! partial correctness relaxes the bound by the non-termination mass
//! `tr(ρ) − tr(σ)`. These definitions are *semantic*; this module evaluates
//! them directly on states to cross-check the proof systems (experiment
//! E10: numerical soundness).

use crate::assertion::Assertion;
use crate::error::VerifError;
use nqpv_lang::Stmt;
use nqpv_linalg::CMat;
use nqpv_quantum::{OperatorLibrary, Register, SuperOp};
use nqpv_semantics::{denote_bounded, DenoteOptions};

/// The two correctness senses of Definition 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `⊨tot`.
    Total,
    /// `⊨par`.
    Partial,
}

/// Evaluates the right-hand side of Definition 4.2 for a single state:
/// `inf { Exp(σ ⊨ Ψ) (+ tr ρ − tr σ) : σ ∈ [[S]](ρ) }` over an explicit
/// semantic set.
pub fn guaranteed_post_expectation(
    sense: Sense,
    semantics: &[SuperOp],
    rho: &CMat,
    post: &Assertion,
) -> f64 {
    let trace_rho = rho.trace_re();
    semantics
        .iter()
        .map(|e| {
            let sigma = e.apply(rho);
            let base = post.expectation(&sigma);
            match sense {
                Sense::Total => base,
                Sense::Partial => base + trace_rho - sigma.trace_re(),
            }
        })
        .fold(f64::INFINITY, f64::min)
}

/// Checks `⊨ {Θ} S {Ψ}` on one state within `tol`:
/// `Exp(ρ ⊨ Θ) ≤ rhs + tol`.
pub fn holds_on_state(
    sense: Sense,
    semantics: &[SuperOp],
    rho: &CMat,
    pre: &Assertion,
    post: &Assertion,
    tol: f64,
) -> bool {
    let lhs = pre.expectation(rho);
    let rhs = guaranteed_post_expectation(sense, semantics, rho, post);
    lhs <= rhs + tol
}

/// Checks a correctness formula on a family of sample states, using
/// depth-bounded loop semantics. For loop-free programs this is exact; for
/// loops, partial correctness is *conservatively approximated* (bounded
/// unrollings have smaller traces, making the partial-correctness slack
/// larger, so `false` results on loops should be confirmed at higher
/// depth).
///
/// # Errors
///
/// Propagates semantic-enumeration failures.
#[allow(clippy::too_many_arguments)] // mirrors the Def. 4.1/4.2 parameter list
pub fn check_on_states(
    sense: Sense,
    stmt: &Stmt,
    pre: &Assertion,
    post: &Assertion,
    lib: &OperatorLibrary,
    reg: &Register,
    states: &[CMat],
    opts: DenoteOptions,
    tol: f64,
) -> Result<bool, VerifError> {
    let semantics = denote_bounded(stmt, lib, reg, opts).map_err(VerifError::Semantics)?;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(states.len().max(1));
    if workers <= 1 || states.len() < 4 {
        return Ok(states
            .iter()
            .all(|rho| holds_on_state(sense, &semantics, rho, pre, post, tol)));
    }
    // States are independent: fan the expectation evaluations out over
    // scoped worker threads (each check multiplies dense 2^n matrices).
    let chunk = states.len().div_ceil(workers);
    let semantics = &semantics;
    let ok = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    part.iter()
                        .all(|rho| holds_on_state(sense, semantics, rho, pre, post, tol))
                })
            })
            .collect();
        handles
            .into_iter()
            .all(|h| h.join().expect("worker thread panicked"))
    });
    Ok(ok)
}

/// Deterministic pseudo-random density operators for sampling-based
/// soundness checks (xorshift-seeded, no RNG dependency).
pub fn sample_states(dim: usize, count: usize, seed: u64) -> Vec<CMat> {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let g = CMat::from_fn(dim, dim, |_, _| nqpv_linalg::c(next(), next()));
        let psd = g.mul(&g.adjoint());
        let t = psd.trace_re().max(1e-12);
        out.push(psd.scale_re(1.0 / t));
    }
    // Include the maximally mixed state and a few pure basis states.
    out.push(CMat::identity(dim).scale_re(1.0 / dim as f64));
    for k in 0..dim.min(2) {
        out.push(nqpv_linalg::CVec::basis(dim, k).projector());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::parse_stmt;
    use nqpv_quantum::ket;

    fn setup(names: &[&str]) -> (OperatorLibrary, Register) {
        (
            OperatorLibrary::with_builtins(),
            Register::new(names).unwrap(),
        )
    }

    #[test]
    fn example_4_1_qec_statement_shape() {
        // ⊨tot {[ψ]} ErrCorr {[ψ]} checked semantically on the full
        // program (loop-free, exact).
        let (lib, reg) = setup(&["q", "q1", "q2"]);
        let s = parse_stmt(
            "[q1 q2] := 0; \
             [q q1] *= CX; [q q2] *= CX; \
             ( skip # [q] *= X # [q1] *= X # [q2] *= X ); \
             [q q2] *= CX; [q q1] *= CX; \
             if M01[q2] then if M01[q1] then [q] *= X end end",
        )
        .unwrap();
        let psi = nqpv_quantum::superpose(0.6, "0", 0.8, "1");
        let pred = nqpv_linalg::embed(&psi.projector(), &[0], 3);
        let pre = Assertion::from_ops(8, vec![pred.clone()]).unwrap();
        let post = Assertion::from_ops(8, vec![pred]).unwrap();
        let states = sample_states(8, 6, 11);
        let ok = check_on_states(
            Sense::Total,
            &s,
            &pre,
            &post,
            &lib,
            &reg,
            &states,
            DenoteOptions::default(),
            1e-8,
        )
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn counterexample_of_sec_4_1_splits_singletons() {
        // ⊨ {Θ} skip {Ψ} with Θ={P0,P1}, Ψ={I/2} holds as a set formula…
        let (_, reg) = setup(&["q"]);
        let dim = reg.dim();
        let p0 = ket("0").projector();
        let p1 = ket("1").projector();
        let theta = Assertion::from_ops(dim, vec![p0.clone(), p1.clone()]).unwrap();
        let psi = Assertion::from_ops(dim, vec![CMat::identity(2).scale_re(0.5)]).unwrap();
        let sem = vec![SuperOp::identity(2)];
        for rho in sample_states(2, 12, 3) {
            assert!(holds_on_state(Sense::Total, &sem, &rho, &theta, &psi, 1e-9));
        }
        // …but neither singleton decomposition holds (paper Sec. 4.1).
        let theta0 = Assertion::from_ops(dim, vec![p0.clone()]).unwrap();
        assert!(!holds_on_state(
            Sense::Total,
            &sem,
            &p0,
            &theta0,
            &psi,
            1e-9
        ));
        let theta1 = Assertion::from_ops(dim, vec![p1.clone()]).unwrap();
        assert!(!holds_on_state(
            Sense::Total,
            &sem,
            &p1,
            &theta1,
            &psi,
            1e-9
        ));
    }

    #[test]
    fn lemma_4_1_total_implies_partial() {
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("( [q] *= H # [q] *= X ); if M01[q] then abort else skip end").unwrap();
        let sem = nqpv_semantics::denote(&s, &lib, &reg).unwrap();
        let pre = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(0.25)]).unwrap();
        let post = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
        for rho in sample_states(2, 10, 17) {
            if holds_on_state(Sense::Total, &sem, &rho, &pre, &post, 1e-9) {
                assert!(holds_on_state(
                    Sense::Partial,
                    &sem,
                    &rho,
                    &pre,
                    &post,
                    1e-9
                ));
            }
        }
    }

    #[test]
    fn lemma_4_1_trivial_formulas() {
        // ⊨tot {0} S {Ψ} and ⊨par {Θ} S {I}.
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("if M01[q] then abort else [q] *= H end").unwrap();
        let sem = nqpv_semantics::denote(&s, &lib, &reg).unwrap();
        let zero = Assertion::zero(2);
        let id = Assertion::identity(2);
        let some_pre = Assertion::from_ops(2, vec![ket("+").projector()]).unwrap();
        let some_post = Assertion::from_ops(2, vec![ket("1").projector()]).unwrap();
        for rho in sample_states(2, 10, 23) {
            assert!(holds_on_state(
                Sense::Total,
                &sem,
                &rho,
                &zero,
                &some_post,
                1e-9
            ));
            assert!(holds_on_state(
                Sense::Partial,
                &sem,
                &rho,
                &some_pre,
                &id,
                1e-9
            ));
        }
    }

    #[test]
    fn qwalk_partial_correctness_i_to_zero() {
        // ⊨par {I} QWalk {0}: the Sec. 5.3 non-termination statement,
        // checked on bounded unrollings (trace of every output is ~0, so the
        // partial-correctness slack covers everything).
        let (lib, reg) = setup(&["q1", "q2"]);
        let s = parse_stmt(
            "[q1 q2] := 0; while MQWalk[q1 q2] do \
             ( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 ) end",
        )
        .unwrap();
        let pre = Assertion::identity(4);
        let post = Assertion::zero(4);
        let opts = DenoteOptions {
            loop_depth: 6,
            max_set: 4096,
            dedupe: true,
        };
        let ok = check_on_states(
            Sense::Partial,
            &s,
            &pre,
            &post,
            &lib,
            &reg,
            &sample_states(4, 5, 31),
            opts,
            1e-8,
        )
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn violated_formula_detected() {
        // {I} (q *= X) {P0} is false on |0⟩⟨0|.
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("[q] *= X").unwrap();
        let sem = nqpv_semantics::denote(&s, &lib, &reg).unwrap();
        let pre = Assertion::identity(2);
        let post = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
        let rho = ket("0").projector();
        assert!(!holds_on_state(Sense::Total, &sem, &rho, &pre, &post, 1e-9));
    }
}
