//! The NQPV verifier: binds a proof term against an operator library,
//! runs the backward pass, and produces the annotated proof outline.
//!
//! This reproduces the Sec. 6.2 workflow: "after successfully parsing the
//! input, NQPV inductively constructs proofs … The strategy is to calculate
//! the weakest preconditions in the backward direction … In the end, the
//! assistant compares the verification condition and the precondition
//! proposed by the user and then generates the final result."

use crate::assertion::Assertion;
use crate::error::VerifError;
use crate::outline::{render_assertion, render_outline, PredicateRegistry};
use crate::ranking::RankingCertificate;
use crate::transformer::VcOptions;
use nqpv_lang::{AssertionExpr, ProofTerm, Stmt};
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_solver::Verdict;
use std::collections::HashMap;

/// The machine-readable record of a failed final comparison
/// `Θ ⊑_inf wp.S.Ψ`: which obligation (element of the computed VC set)
/// was violated, the solver's witness state, and the certified margin.
/// This is the raw material the `nqpv-diagnose` counterexample extractor
/// refines into a replayed witness + scheduler trace; previously the
/// solver's evidence was rendered into a string and discarded.
#[derive(Debug, Clone)]
pub struct FailedObligation {
    /// Index of the violated element of the computed VC set
    /// ([`VerifyOutcome::computed_pre`]).
    pub vc_index: usize,
    /// The solver's witness density operator `ρ` with
    /// `Exp(ρ ⊨ Θ) > tr(VC[vc_index]·ρ) + margin`.
    pub witness: nqpv_linalg::CMat,
    /// The certified violation margin.
    pub margin: f64,
}

/// The final status of a verification run.
#[derive(Debug, Clone)]
pub enum VerifyStatus {
    /// The user's precondition entails the computed verification condition
    /// (or no precondition was given — the tool then reports the weakest
    /// precondition it computed, Sec. 6.1).
    Verified,
    /// `pre ⊑_inf VC` failed: the correctness formula is rejected.
    PreconditionViolated {
        /// Rendered diagnostic (the tool's "Order relation not satisfied").
        details: String,
        /// The structured violation evidence (obligation index, witness
        /// state, margin).
        violation: FailedObligation,
    },
    /// The solver could not resolve the final comparison within tolerance.
    Unresolved {
        /// Diagnostic.
        details: String,
    },
}

impl VerifyStatus {
    /// `true` for [`VerifyStatus::Verified`].
    pub fn verified(&self) -> bool {
        matches!(self, VerifyStatus::Verified)
    }
}

/// The result of verifying one proof term.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// Whether the correctness formula was established.
    pub status: VerifyStatus,
    /// The computed verification condition (weakest precondition when no
    /// loops intervene; invariant-derived otherwise).
    pub computed_pre: Assertion,
    /// The annotated proof outline, in the tool's output format.
    pub outline: String,
}

/// Verifies a proof term, extending `registry` with every predicate that
/// appears (user-supplied and generated `VAR*`).
///
/// # Errors
///
/// Returns [`VerifError`] for structural failures (unknown operators,
/// invalid invariants/rankings, failed cut assertions, resource limits).
/// A failing *final* precondition check is reported through
/// [`VerifyStatus::PreconditionViolated`], not an error, so the outline is
/// still available — mirroring the tool, which prints the outline and the
/// error message.
pub fn verify_proof_term(
    term: &ProofTerm,
    lib: &OperatorLibrary,
    opts: VcOptions,
    rankings: &HashMap<usize, RankingCertificate>,
    registry: &mut PredicateRegistry,
) -> Result<VerifyOutcome, VerifError> {
    verify_proof_term_with(term, lib, opts, rankings, registry, None)
}

/// [`verify_proof_term`] with an optional memo cache threaded through to
/// the backward pass (see [`crate::cache::TransformerCache`]); batch
/// drivers share one cache across many proof terms.
///
/// # Errors
///
/// Same as [`verify_proof_term`].
pub fn verify_proof_term_with(
    term: &ProofTerm,
    lib: &OperatorLibrary,
    opts: VcOptions,
    rankings: &HashMap<usize, RankingCertificate>,
    registry: &mut PredicateRegistry,
    cache: Option<&dyn crate::cache::TransformerCache>,
) -> Result<VerifyOutcome, VerifError> {
    let reg = Register::new(&term.qubits)?;
    // Resolve and name the user-facing assertions (rank detection per
    // `opts.factor_assertions`).
    let post = resolve_user_assertion(&term.post, lib, &reg, registry, opts.factor_assertions)?;
    let pre = match &term.pre {
        Some(expr) => Some(resolve_user_assertion(
            expr,
            lib,
            &reg,
            registry,
            opts.factor_assertions,
        )?),
        None => None,
    };
    register_stmt_assertions(&term.body, lib, &reg, registry);

    // Backward pass.
    let ann = crate::transformer::backward_with_cache(
        &term.body, &post, lib, &reg, opts, rankings, cache,
    )?;

    // Final comparison (when a precondition was supplied) — through the
    // verdict cache, so byte-identical jobs in a batch decide it once.
    let status = match &pre {
        None => VerifyStatus::Verified,
        Some(p) => match p.le_inf_cached(&ann.pre, opts.lowner, cache)? {
            Verdict::Holds => VerifyStatus::Verified,
            Verdict::Violated(v) => VerifyStatus::PreconditionViolated {
                details: format!(
                    "Order relation not satisfied:\n  {} <= {}\n  (violation margin {:.3e})",
                    render_expr(&term.post, term.pre.as_ref()),
                    render_assertion(&ann.pre.clone(), registry, &term.qubits.join(" ")),
                    v.margin
                ),
                violation: FailedObligation {
                    vc_index: v.index,
                    witness: v.witness,
                    margin: v.margin,
                },
            },
            Verdict::Inconclusive { lower, upper, .. } => VerifyStatus::Unresolved {
                details: format!("final comparison unresolved in [{lower:.3e}, {upper:.3e}]"),
            },
        },
    };

    let pre_display = term.pre.as_ref().map(render_assertion_expr);
    let outline = render_outline(
        &term.qubits,
        pre_display.as_deref(),
        &ann,
        &render_assertion_expr(&term.post),
        registry,
    );
    Ok(VerifyOutcome {
        status,
        computed_pre: ann.pre,
        outline,
    })
}

fn render_assertion_expr(expr: &AssertionExpr) -> String {
    nqpv_lang::pretty_assertion(expr)
}

fn render_expr(post: &AssertionExpr, pre: Option<&AssertionExpr>) -> String {
    match pre {
        Some(p) => render_assertion_expr(p),
        None => render_assertion_expr(post),
    }
}

/// Resolves a user assertion and registers each term's embedded matrix
/// under its source display name.
fn resolve_user_assertion(
    expr: &AssertionExpr,
    lib: &OperatorLibrary,
    reg: &Register,
    registry: &mut PredicateRegistry,
    factor: bool,
) -> Result<Assertion, VerifError> {
    let a = Assertion::from_expr_with(expr, lib, reg, factor)?;
    if !a.validate_predicates(1e-6) {
        return Err(VerifError::InvalidInvariant {
            details: "assertion contains operators outside 0 ⊑ M ⊑ I".into(),
        });
    }
    register_expr(expr, lib, reg, registry);
    Ok(a)
}

/// Registers the embedded matrices of every assertion expression appearing
/// inside a statement (invariants and cut assertions), so the outline shows
/// source names instead of `VAR*`.
fn register_stmt_assertions(
    stmt: &Stmt,
    lib: &OperatorLibrary,
    reg: &Register,
    registry: &mut PredicateRegistry,
) {
    match stmt {
        Stmt::Assert(a) => register_expr(a, lib, reg, registry),
        Stmt::Seq(items) => {
            for s in items {
                register_stmt_assertions(s, lib, reg, registry);
            }
        }
        Stmt::NDet(a, b) => {
            register_stmt_assertions(a, lib, reg, registry);
            register_stmt_assertions(b, lib, reg, registry);
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            register_stmt_assertions(then_branch, lib, reg, registry);
            register_stmt_assertions(else_branch, lib, reg, registry);
        }
        Stmt::While {
            invariant, body, ..
        } => {
            if let Some(inv) = invariant {
                register_expr(inv, lib, reg, registry);
            }
            register_stmt_assertions(body, lib, reg, registry);
        }
        _ => {}
    }
}

fn register_expr(
    expr: &AssertionExpr,
    lib: &OperatorLibrary,
    reg: &Register,
    registry: &mut PredicateRegistry,
) {
    for term in &expr.terms {
        if let Ok(m) = lib.predicate(&term.op) {
            if let Ok(pos) = reg.positions(&term.qubits) {
                if m.rows() == (1usize << pos.len()) {
                    let embedded = nqpv_linalg::embed(&m, &pos, reg.n_qubits());
                    registry.register_named(
                        &format!("{}[{}]", term.op, term.qubits.join(" ")),
                        &embedded,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::Mode;
    use nqpv_lang::parse_proof_body;
    use nqpv_linalg::CVec;

    fn qwalk_library() -> OperatorLibrary {
        let mut lib = OperatorLibrary::with_builtins();
        let n00 = nqpv_quantum::ket("00").projector();
        let v = CVec::new(vec![
            nqpv_linalg::cr(0.0),
            nqpv_linalg::cr(std::f64::consts::FRAC_1_SQRT_2),
            nqpv_linalg::cr(0.0),
            nqpv_linalg::cr(std::f64::consts::FRAC_1_SQRT_2),
        ]);
        lib.insert_predicate("invN", n00.add_mat(&v.projector()))
            .unwrap();
        lib
    }

    const QWALK_BODY: &str = "{ I[q1] }; \
        [q1 q2] := 0; \
        { inv : invN[q1 q2] }; \
        while MQWalk[q1 q2] do \
          ( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 ) \
        end; \
        { Zero[q1] }";

    #[test]
    fn qwalk_verifies_and_produces_the_sec62_outline() {
        let lib = qwalk_library();
        let term = parse_proof_body(&["q1", "q2"], QWALK_BODY).unwrap();
        let mut registry = PredicateRegistry::new();
        let outcome = verify_proof_term(
            &term,
            &lib,
            VcOptions::default(),
            &HashMap::new(),
            &mut registry,
        )
        .unwrap();
        assert!(outcome.status.verified(), "{:?}", outcome.status);
        // The outline must show the invariant name and the while structure.
        assert!(
            outcome.outline.contains("invN[q1 q2]"),
            "{}",
            outcome.outline
        );
        assert!(outcome.outline.contains("while MQWalk[q1 q2] do"));
        assert!(outcome.outline.contains("// the Veri. Con."));
        // The generated VC for the whole program is I (full space), i.e.
        // the formula {I} QWalk {0} of Eq. 15.
        assert_eq!(outcome.computed_pre.len(), 1);
        assert!(outcome.computed_pre.ops()[0].approx_eq(&nqpv_linalg::CMat::identity(4), 1e-9));
        // show VAR-like names resolve.
        assert!(registry.matrix("invN[q1 q2]").is_some());
    }

    #[test]
    fn invalid_invariant_reports_the_paper_error() {
        let lib = qwalk_library();
        let body = QWALK_BODY.replace("invN[q1 q2]", "P0[q1]");
        let term = parse_proof_body(&["q1", "q2"], &body).unwrap();
        let mut registry = PredicateRegistry::new();
        let err = verify_proof_term(
            &term,
            &lib,
            VcOptions::default(),
            &HashMap::new(),
            &mut registry,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Order relation not satisfied"), "{msg}");
        assert!(msg.contains("not a valid loop invariant"), "{msg}");
    }

    #[test]
    fn failing_precondition_is_reported_not_errored() {
        // {P1} H {P0} is false (wlp = |+⟩⟨+|, and P1 ⋢ |+⟩⟨+|).
        let lib = OperatorLibrary::with_builtins();
        let term = parse_proof_body(&["q"], "{ P1[q] }; [q] *= H; { P0[q] }").unwrap();
        let mut registry = PredicateRegistry::new();
        let outcome = verify_proof_term(
            &term,
            &lib,
            VcOptions::default(),
            &HashMap::new(),
            &mut registry,
        )
        .unwrap();
        match outcome.status {
            VerifyStatus::PreconditionViolated { details, violation } => {
                assert!(details.contains("Order relation not satisfied"));
                // The structured record carries the solver's evidence: the
                // witness is a state with tr(P1·ρ) − tr(Pp·ρ) = margin.
                assert!(violation.margin > 0.2, "{}", violation.margin);
                assert!(nqpv_linalg::is_partial_density(&violation.witness, 1e-6));
            }
            other => panic!("expected violation, got {other:?}"),
        }
        // Outline still rendered.
        assert!(outcome.outline.contains("[q] *= H"));
    }

    #[test]
    fn omitted_precondition_reports_weakest_precondition() {
        let lib = OperatorLibrary::with_builtins();
        let term = parse_proof_body(&["q"], "[q] *= H; { P0[q] }").unwrap();
        let mut registry = PredicateRegistry::new();
        let outcome = verify_proof_term(
            &term,
            &lib,
            VcOptions::default(),
            &HashMap::new(),
            &mut registry,
        )
        .unwrap();
        assert!(outcome.status.verified());
        // VC = |+⟩⟨+| = Pp.
        assert!(outcome.computed_pre.ops()[0].approx_eq(&nqpv_quantum::ket("+").projector(), 1e-9));
    }

    #[test]
    fn total_mode_verifies_rus_with_ranking() {
        let lib = OperatorLibrary::with_builtins();
        let term = parse_proof_body(
            &["q"],
            "{ I[q] }; [q] := 0; [q] *= H; { inv : I[q] }; \
             while M01[q] do [q] *= H end; { P0[q] }",
        )
        .unwrap();
        let mut rankings = HashMap::new();
        rankings.insert(
            0,
            RankingCertificate::geometric(2, nqpv_quantum::ket("1").projector(), 0.5),
        );
        let mut registry = PredicateRegistry::new();
        let outcome = verify_proof_term(
            &term,
            &lib,
            VcOptions {
                mode: Mode::Total,
                ..VcOptions::default()
            },
            &rankings,
            &mut registry,
        )
        .unwrap();
        assert!(outcome.status.verified(), "{:?}", outcome.status);
    }
}
