//! Proof objects for the Hoare logics of Fig. 3 (partial) and Sec. 4.2
//! (total), with a side-condition checker.
//!
//! A [`ProofNode`] is a derivation tree; [`check_proof`] replays it,
//! validating every rule application numerically and returning the
//! established [`Formula`] `{Θ} S {Ψ}`. By Theorems 4.1/4.2 a checked tree
//! witnesses semantic (partial/total) correctness — the integration suite
//! re-verifies that claim by sampling (experiment E10).
//!
//! Unlike the backward verifier ([`crate::backward`]), which *computes*
//! weakest preconditions, this module checks *user-built* derivations; the
//! paper's Sec. 5 case studies are replayed this way in
//! [`crate::casestudies`].

use crate::assertion::Assertion;
use crate::error::VerifError;
use crate::ranking::{check_ranking, RankingCertificate};
use crate::transformer::Mode;
use nqpv_lang::Stmt;
use nqpv_linalg::embed;
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_solver::{LownerOptions, Verdict};

/// A correctness formula `{Θ} S {Ψ}` established by a proof.
#[derive(Debug, Clone)]
pub struct Formula {
    /// Precondition.
    pub pre: Assertion,
    /// The program the formula is about.
    pub stmt: Stmt,
    /// Postcondition.
    pub post: Assertion,
}

/// A derivation tree in the proof system.
#[derive(Debug, Clone)]
pub enum ProofNode {
    /// (Skip): `{Θ} skip {Θ}`.
    Skip {
        /// The shared pre/postcondition.
        theta: Assertion,
    },
    /// (Abort), partial mode: `{I} abort {0}`.
    Abort,
    /// (AbortT), total mode: `{0} abort {0}`.
    AbortT,
    /// (Init): `{Σᵢ |i⟩⟨0| Θ |0⟩⟨i|} q̄ := 0 {Θ}`.
    Init {
        /// Target qubits.
        qubits: Vec<String>,
        /// Postcondition.
        post: Assertion,
    },
    /// (Unit): `{U† Θ U} q̄ *= U {Θ}`.
    Unit {
        /// Target qubits.
        qubits: Vec<String>,
        /// Unitary name.
        op: String,
        /// Postcondition.
        post: Assertion,
    },
    /// (Seq): from `{Θ} S₀ {Θ'}` and `{Θ'} S₁ {Ψ}` conclude
    /// `{Θ} S₀;S₁ {Ψ}`. The intermediate assertions must match exactly.
    Seq(Box<ProofNode>, Box<ProofNode>),
    /// (NDet): from `{Θ} S₀ {Ψ}` and `{Θ} S₁ {Ψ}` conclude
    /// `{Θ} S₀□S₁ {Ψ}`.
    NDet(Box<ProofNode>, Box<ProofNode>),
    /// (Meas): from `{Θ₁} S₁ {Ψ}` and `{Θ₀} S₀ {Ψ}` conclude
    /// `{P⁰(Θ₀)+P¹(Θ₁)} if M[q̄] then S₁ else S₀ end {Ψ}`.
    Meas {
        /// Measurement name.
        meas: String,
        /// Measured qubits.
        qubits: Vec<String>,
        /// Proof of the outcome-1 branch.
        then_proof: Box<ProofNode>,
        /// Proof of the outcome-0 branch.
        else_proof: Box<ProofNode>,
    },
    /// (While)/(WhileT): from `{Θ} S {P⁰(Ψ)+P¹(Θ)}` conclude
    /// `{P⁰(Ψ)+P¹(Θ)} while M[q̄] do S end {Ψ}`. In total mode a ranking
    /// certificate must be supplied.
    While {
        /// Measurement name.
        meas: String,
        /// Measured qubits.
        qubits: Vec<String>,
        /// The loop invariant `Θ`.
        invariant: Assertion,
        /// The loop postcondition `Ψ`.
        post: Assertion,
        /// Proof of the body premise.
        body_proof: Box<ProofNode>,
        /// Ranking certificate (required in total mode).
        ranking: Option<RankingCertificate>,
    },
    /// (Imp): from `Θ ⊑_inf Θ'`, `{Θ'} S {Ψ'}`, `Ψ' ⊑_inf Ψ` conclude
    /// `{Θ} S {Ψ}`.
    Imp {
        /// The weakened precondition `Θ`.
        pre: Assertion,
        /// The inner derivation.
        inner: Box<ProofNode>,
        /// The strengthened postcondition `Ψ`.
        post: Assertion,
    },
    /// (Union): from `{Θᵢ} S {Ψᵢ}` for all `i` conclude
    /// `{∪Θᵢ} S {∪Ψᵢ}`.
    Union(Vec<ProofNode>),
}

impl ProofNode {
    /// Boxing helper for (Seq).
    pub fn seq(a: ProofNode, b: ProofNode) -> ProofNode {
        ProofNode::Seq(Box::new(a), Box::new(b))
    }

    /// Folds a chain of (Seq) applications left-to-right.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn seq_all(nodes: Vec<ProofNode>) -> ProofNode {
        let mut it = nodes.into_iter();
        let first = it.next().expect("seq_all needs at least one node");
        it.fold(first, ProofNode::seq)
    }

    /// Boxing helper for (NDet).
    pub fn ndet(a: ProofNode, b: ProofNode) -> ProofNode {
        ProofNode::NDet(Box::new(a), Box::new(b))
    }

    /// Folds a chain of (NDet) applications left-to-right.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn ndet_all(nodes: Vec<ProofNode>) -> ProofNode {
        let mut it = nodes.into_iter();
        let first = it.next().expect("ndet_all needs at least one node");
        it.fold(first, ProofNode::ndet)
    }

    /// Boxing helper for (Imp).
    pub fn imp(pre: Assertion, inner: ProofNode, post: Assertion) -> ProofNode {
        ProofNode::Imp {
            pre,
            inner: Box::new(inner),
            post,
        }
    }
}

/// Matching tolerance for rule-premise assertion equality.
const MATCH_TOL: f64 = 1e-8;

/// Replays a derivation, checking every side condition.
///
/// # Errors
///
/// Returns [`VerifError`] describing the first failing rule application.
pub fn check_proof(
    node: &ProofNode,
    mode: Mode,
    lib: &OperatorLibrary,
    reg: &Register,
    lowner: LownerOptions,
) -> Result<Formula, VerifError> {
    let dim = reg.dim();
    let n = reg.n_qubits();
    match node {
        ProofNode::Skip { theta } => Ok(Formula {
            pre: theta.clone(),
            stmt: Stmt::Skip,
            post: theta.clone(),
        }),
        ProofNode::Abort => {
            if mode != Mode::Partial {
                return Err(VerifError::InvalidInvariant {
                    details: "(Abort) is a partial-correctness rule; use (AbortT)".into(),
                });
            }
            Ok(Formula {
                pre: Assertion::identity(dim),
                stmt: Stmt::Abort,
                post: Assertion::zero(dim),
            })
        }
        ProofNode::AbortT => {
            if mode != Mode::Total {
                return Err(VerifError::InvalidInvariant {
                    details: "(AbortT) is a total-correctness rule; use (Abort)".into(),
                });
            }
            Ok(Formula {
                pre: Assertion::zero(dim),
                stmt: Stmt::Abort,
                post: Assertion::zero(dim),
            })
        }
        ProofNode::Init { qubits, post } => {
            let pos = reg.positions(qubits)?;
            let pre = post.wp_init(&pos, n);
            Ok(Formula {
                pre,
                stmt: Stmt::Init {
                    qubits: qubits.clone(),
                },
                post: post.clone(),
            })
        }
        ProofNode::Unit { qubits, op, post } => {
            let u = lib.unitary(op)?;
            let pos = reg.positions(qubits)?;
            let k = u.rows().trailing_zeros() as usize;
            if k != pos.len() {
                return Err(VerifError::ArityMismatch {
                    op: op.clone(),
                    expected: k,
                    got: pos.len(),
                });
            }
            let pre = post.wp_unitary(u, &pos, n);
            Ok(Formula {
                pre,
                stmt: Stmt::Unitary {
                    qubits: qubits.clone(),
                    op: op.clone(),
                },
                post: post.clone(),
            })
        }
        ProofNode::Seq(a, b) => {
            let fa = check_proof(a, mode, lib, reg, lowner)?;
            let fb = check_proof(b, mode, lib, reg, lowner)?;
            if !fa.post.approx_set_eq(&fb.pre, MATCH_TOL) {
                return Err(VerifError::InvalidInvariant {
                    details: "(Seq) premises do not share the intermediate assertion".into(),
                });
            }
            Ok(Formula {
                pre: fa.pre,
                stmt: Stmt::seq(vec![fa.stmt, fb.stmt]),
                post: fb.post,
            })
        }
        ProofNode::NDet(a, b) => {
            let fa = check_proof(a, mode, lib, reg, lowner)?;
            let fb = check_proof(b, mode, lib, reg, lowner)?;
            if !fa.pre.approx_set_eq(&fb.pre, MATCH_TOL) {
                return Err(VerifError::InvalidInvariant {
                    details: "(NDet) premises have different preconditions".into(),
                });
            }
            if !fa.post.approx_set_eq(&fb.post, MATCH_TOL) {
                return Err(VerifError::InvalidInvariant {
                    details: "(NDet) premises have different postconditions".into(),
                });
            }
            Ok(Formula {
                pre: fa.pre,
                stmt: Stmt::ndet(fa.stmt, fb.stmt),
                post: fa.post,
            })
        }
        ProofNode::Meas {
            meas,
            qubits,
            then_proof,
            else_proof,
        } => {
            let m = lib.measurement(meas)?;
            let pos = reg.positions(qubits)?;
            if m.n_qubits() != pos.len() {
                return Err(VerifError::ArityMismatch {
                    op: meas.clone(),
                    expected: m.n_qubits(),
                    got: pos.len(),
                });
            }
            let ft = check_proof(then_proof, mode, lib, reg, lowner)?;
            let fe = check_proof(else_proof, mode, lib, reg, lowner)?;
            if !ft.post.approx_set_eq(&fe.post, MATCH_TOL) {
                return Err(VerifError::InvalidInvariant {
                    details: "(Meas) branch postconditions differ".into(),
                });
            }
            // Strided local sandwiches — no embedded projector matrices,
            // and factored branch preconditions stay factored.
            let pre = fe
                .pre
                .sandwich_local(m.p0(), &pos, n)
                .sum_pairwise(&ft.pre.sandwich_local(m.p1(), &pos, n))?;
            Ok(Formula {
                pre,
                stmt: Stmt::If {
                    meas: meas.clone(),
                    qubits: qubits.clone(),
                    then_branch: Box::new(ft.stmt),
                    else_branch: Box::new(fe.stmt),
                },
                post: ft.post,
            })
        }
        ProofNode::While {
            meas,
            qubits,
            invariant,
            post,
            body_proof,
            ranking,
        } => {
            let m = lib.measurement(meas)?;
            let pos = reg.positions(qubits)?;
            if m.n_qubits() != pos.len() {
                return Err(VerifError::ArityMismatch {
                    op: meas.clone(),
                    expected: m.n_qubits(),
                    got: pos.len(),
                });
            }
            let phi = post
                .sandwich_local(m.p0(), &pos, n)
                .sum_pairwise(&invariant.sandwich_local(m.p1(), &pos, n))?;
            let fb = check_proof(body_proof, mode, lib, reg, lowner)?;
            if !fb.pre.approx_set_eq(invariant, MATCH_TOL) {
                return Err(VerifError::InvalidInvariant {
                    details: "(While) body premise precondition is not the invariant".into(),
                });
            }
            if !fb.post.approx_set_eq(&phi, MATCH_TOL) {
                return Err(VerifError::InvalidInvariant {
                    details: "(While) body premise postcondition is not P⁰(Ψ)+P¹(Θ)".into(),
                });
            }
            if mode == Mode::Total {
                let cert = ranking.as_ref().ok_or(VerifError::MissingRanking)?;
                // Ranking discharge is a per-loop side condition; it takes
                // the embedded P¹.
                check_ranking(
                    cert,
                    &phi,
                    &fb.stmt,
                    &embed(m.p1(), &pos, n),
                    lib,
                    reg,
                    lowner,
                )?;
            }
            Ok(Formula {
                pre: phi,
                stmt: Stmt::While {
                    meas: meas.clone(),
                    qubits: qubits.clone(),
                    invariant: None,
                    body: Box::new(fb.stmt),
                },
                post: post.clone(),
            })
        }
        ProofNode::Imp { pre, inner, post } => {
            let fi = check_proof(inner, mode, lib, reg, lowner)?;
            match pre.le_inf(&fi.pre, lowner)? {
                Verdict::Holds => {}
                v => {
                    return Err(VerifError::PreconditionFailed {
                        details: format!("(Imp) premise Θ ⊑_inf Θ' fails: {v}"),
                    })
                }
            }
            match fi.post.le_inf(post, lowner)? {
                Verdict::Holds => {}
                v => {
                    return Err(VerifError::PreconditionFailed {
                        details: format!("(Imp) premise Ψ' ⊑_inf Ψ fails: {v}"),
                    })
                }
            }
            Ok(Formula {
                pre: pre.clone(),
                stmt: fi.stmt,
                post: post.clone(),
            })
        }
        ProofNode::Union(nodes) => {
            if nodes.is_empty() {
                return Err(VerifError::EmptyAssertion);
            }
            let formulas: Vec<Formula> = nodes
                .iter()
                .map(|p| check_proof(p, mode, lib, reg, lowner))
                .collect::<Result<_, _>>()?;
            let stmt = formulas[0].stmt.clone();
            for f in &formulas[1..] {
                if f.stmt != stmt {
                    return Err(VerifError::InvalidInvariant {
                        details: "(Union) premises are about different programs".into(),
                    });
                }
            }
            let mut pre = formulas[0].pre.clone();
            let mut post = formulas[0].post.clone();
            for f in &formulas[1..] {
                pre = pre.union(&f.pre)?;
                post = post.union(&f.post)?;
            }
            Ok(Formula { pre, stmt, post })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctness::{holds_on_state, sample_states, Sense};
    use nqpv_linalg::CMat;
    use nqpv_quantum::ket;
    use std::collections::HashMap;

    fn setup(names: &[&str]) -> (OperatorLibrary, Register) {
        (
            OperatorLibrary::with_builtins(),
            Register::new(names).unwrap(),
        )
    }

    fn a1(dim: usize, m: CMat) -> Assertion {
        Assertion::from_ops(dim, vec![m]).unwrap()
    }

    #[test]
    fn unit_rule_formula() {
        let (lib, reg) = setup(&["q"]);
        let node = ProofNode::Unit {
            qubits: vec!["q".into()],
            op: "H".into(),
            post: a1(2, ket("0").projector()),
        };
        let f = check_proof(&node, Mode::Total, &lib, &reg, LownerOptions::default()).unwrap();
        assert!(f.pre.ops()[0].approx_eq(&ket("+").projector(), 1e-10));
    }

    #[test]
    fn seq_requires_matching_interface() {
        let (lib, reg) = setup(&["q"]);
        // {H†P0H} H {P0} ; {P0} skip {P0} — OK.
        let ok = ProofNode::seq(
            ProofNode::Unit {
                qubits: vec!["q".into()],
                op: "H".into(),
                post: a1(2, ket("0").projector()),
            },
            ProofNode::Skip {
                theta: a1(2, ket("0").projector()),
            },
        );
        assert!(check_proof(&ok, Mode::Total, &lib, &reg, LownerOptions::default()).is_ok());
        // Mismatched interface fails.
        let bad = ProofNode::seq(
            ProofNode::Unit {
                qubits: vec!["q".into()],
                op: "H".into(),
                post: a1(2, ket("0").projector()),
            },
            ProofNode::Skip {
                theta: a1(2, ket("1").projector()),
            },
        );
        assert!(check_proof(&bad, Mode::Total, &lib, &reg, LownerOptions::default()).is_err());
    }

    #[test]
    fn ndet_rule_builds_choice_formula() {
        let (lib, reg) = setup(&["q"]);
        // {Θ} skip {Θ} and {Θ} q*=X {XΘX = Θ} with Θ = I/2 (X-invariant).
        let theta = a1(2, CMat::identity(2).scale_re(0.5));
        let node = ProofNode::ndet(
            ProofNode::Skip {
                theta: theta.clone(),
            },
            ProofNode::Unit {
                qubits: vec!["q".into()],
                op: "X".into(),
                post: theta.clone(),
            },
        );
        let f = check_proof(&node, Mode::Total, &lib, &reg, LownerOptions::default()).unwrap();
        assert!(matches!(f.stmt, Stmt::NDet(_, _)));
        // Soundness spot check.
        let lib2 = OperatorLibrary::with_builtins();
        let sem = nqpv_semantics::denote(&f.stmt, &lib2, &reg).unwrap();
        for rho in sample_states(2, 8, 5) {
            assert!(holds_on_state(
                Sense::Total,
                &sem,
                &rho,
                &f.pre,
                &f.post,
                1e-8
            ));
        }
    }

    #[test]
    fn abort_rules_respect_modes() {
        let (lib, reg) = setup(&["q"]);
        assert!(check_proof(
            &ProofNode::Abort,
            Mode::Partial,
            &lib,
            &reg,
            LownerOptions::default()
        )
        .is_ok());
        assert!(check_proof(
            &ProofNode::Abort,
            Mode::Total,
            &lib,
            &reg,
            LownerOptions::default()
        )
        .is_err());
        assert!(check_proof(
            &ProofNode::AbortT,
            Mode::Total,
            &lib,
            &reg,
            LownerOptions::default()
        )
        .is_ok());
        assert!(check_proof(
            &ProofNode::AbortT,
            Mode::Partial,
            &lib,
            &reg,
            LownerOptions::default()
        )
        .is_err());
    }

    #[test]
    fn imp_rule_checks_both_inclusions() {
        let (lib, reg) = setup(&["q"]);
        let half = a1(2, CMat::identity(2).scale_re(0.5));
        let id = Assertion::identity(2);
        // {I/2} skip {I} via Imp around {I} skip {I}? pre: I/2 ⊑ I ✓,
        // post: I ⊑ I ✓.
        let node = ProofNode::imp(
            half.clone(),
            ProofNode::Skip { theta: id.clone() },
            id.clone(),
        );
        assert!(check_proof(&node, Mode::Total, &lib, &reg, LownerOptions::default()).is_ok());
        // Illegal strengthening: {I} skip {I/2}.
        let bad = ProofNode::imp(id.clone(), ProofNode::Skip { theta: id }, half);
        assert!(check_proof(&bad, Mode::Total, &lib, &reg, LownerOptions::default()).is_err());
    }

    #[test]
    fn union_rule_merges_formulas() {
        let (lib, reg) = setup(&["q"]);
        let n0 = ProofNode::Skip {
            theta: a1(2, ket("0").projector()),
        };
        let n1 = ProofNode::Skip {
            theta: a1(2, ket("1").projector()),
        };
        let f = check_proof(
            &ProofNode::Union(vec![n0, n1]),
            Mode::Total,
            &lib,
            &reg,
            LownerOptions::default(),
        )
        .unwrap();
        assert_eq!(f.pre.len(), 2);
        assert_eq!(f.post.len(), 2);
    }

    #[test]
    fn while_rule_with_ranking_in_total_mode() {
        let (lib, reg) = setup(&["q"]);
        // Invariant Θ = {I}, post Ψ = {I}: body premise {I} H {P0(I)+P1(I) = I}.
        let id = Assertion::identity(2);
        let body = ProofNode::Unit {
            qubits: vec!["q".into()],
            op: "H".into(),
            post: id.clone(),
        };
        let node = ProofNode::While {
            meas: "M01".into(),
            qubits: vec!["q".into()],
            invariant: id.clone(),
            post: id.clone(),
            body_proof: Box::new(body),
            ranking: Some(RankingCertificate::geometric(2, ket("1").projector(), 0.5)),
        };
        let f = check_proof(&node, Mode::Total, &lib, &reg, LownerOptions::default()).unwrap();
        assert!(f.pre.ops()[0].approx_eq(&CMat::identity(2), 1e-9));
        // Same node without ranking fails in total mode but passes partial.
        let node2 = ProofNode::While {
            meas: "M01".into(),
            qubits: vec!["q".into()],
            invariant: id.clone(),
            post: id.clone(),
            body_proof: Box::new(ProofNode::Unit {
                qubits: vec!["q".into()],
                op: "H".into(),
                post: id.clone(),
            }),
            ranking: None,
        };
        assert!(matches!(
            check_proof(&node2, Mode::Total, &lib, &reg, LownerOptions::default()),
            Err(VerifError::MissingRanking)
        ));
        assert!(check_proof(&node2, Mode::Partial, &lib, &reg, LownerOptions::default()).is_ok());
    }

    #[test]
    fn checked_partial_proofs_are_semantically_sound_on_samples() {
        // Build a few small derivations and verify Definition 4.2 on states.
        let (lib, reg) = setup(&["q"]);
        let p0 = a1(2, ket("0").projector());
        let deriv = ProofNode::seq(
            ProofNode::Unit {
                qubits: vec!["q".into()],
                op: "X".into(),
                post: a1(2, ket("1").projector()),
            },
            ProofNode::Unit {
                qubits: vec!["q".into()],
                op: "X".into(),
                post: p0.clone(),
            },
        );
        // check interface: X†P0X = P1 must equal the first post.
        let f = check_proof(&deriv, Mode::Partial, &lib, &reg, LownerOptions::default())
            .expect("interface matches");
        let sem = nqpv_semantics::denote(&f.stmt, &lib, &reg).unwrap();
        for rho in sample_states(2, 10, 9) {
            assert!(holds_on_state(
                Sense::Partial,
                &sem,
                &rho,
                &f.pre,
                &f.post,
                1e-8
            ));
        }
        let _ = HashMap::<usize, RankingCertificate>::new();
    }
}
