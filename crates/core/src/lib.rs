//! # nqpv-core
//!
//! The primary contribution of *Verification of Nondeterministic Quantum
//! Programs* (ASPLOS '23), reproduced in Rust:
//!
//! * [`Assertion`] — finite sets of quantum predicates with the `⊑_inf`
//!   order (paper Sec. 4);
//! * [`backward`]/[`precondition`] — weakest-(liberal-)precondition
//!   transformers and verification-condition generation (Fig. 5, Sec. 6.2),
//!   with loop invariants and [`RankingCertificate`]s (Def. 4.3);
//! * [`proof`] — explicit proof objects for the Hoare logic of Fig. 3 with
//!   a side-condition checker (soundness enforced numerically);
//! * [`verify_proof_term`] — the NQPV verifier: parse-bind-verify with
//!   proof-outline generation and the `show` registry;
//! * [`casestudies`] — the paper's Sec. 5 examples (QEC, Deutsch, QWalk),
//!   Grover for the Sec. 6.5 scaling study, and a repeat-until-success
//!   total-correctness example.

pub mod angelic;
mod assertion;
pub mod cache;
pub mod casestudies;
pub mod correctness;
pub mod derivations;
mod error;
pub mod infer;
mod outline;
pub mod proof;
mod ranking;
pub mod refinement;
mod session;
mod transformer;
mod verifier;

pub use assertion::{Assertion, Factor, Predicate};
pub use cache::{
    decode_verdict, encode_verdict, verdict_key, CacheKey, TransformerCache, VERDICT_KEY_SCHEMA,
    VERDICT_TAG_INF, VERDICT_TAG_SUP,
};
pub use error::VerifError;
pub use outline::{render_assertion, render_matrix, render_outline, PredicateRegistry};
pub use ranking::{check_ranking, RankingCertificate};
pub use session::{Session, SessionError};
pub use transformer::{
    backward, backward_with_cache, precondition, Annotated, AnnotatedNode, Mode, VcOptions,
};
pub use verifier::{
    verify_proof_term, verify_proof_term_with, FailedObligation, VerifyOutcome, VerifyStatus,
};
