//! Proof-outline rendering and the predicate name registry.
//!
//! NQPV annotates "every sub-program statement … with the corresponding
//! pre- and postconditions", naming freshly computed predicates `VAR0`,
//! `VAR1`, … (paper Sec. 6.2); `show NAME end` then prints the matrix.
//! [`PredicateRegistry`] owns the fingerprint→name map and the matrices;
//! [`render_outline`] produces the annotated listing.

use crate::assertion::Predicate;
use crate::transformer::{Annotated, AnnotatedNode};
use nqpv_linalg::{CMat, Complex};
use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;

/// Fingerprint quantisation used for name lookup.
const FP_SCALE: f64 = 1e8;

/// Probe agreement slack per unit dimension. Operators whose dense
/// fingerprints collide at [`FP_SCALE`] differ by `< 10⁻⁸` per entry, so
/// their probe images differ by at most `dim·10⁻⁸` per component (probe
/// entries lie in `[-1, 1]²`); the screen uses 10× that, so it can never
/// separate two operators the dense fingerprint would identify.
const PROBE_TOL_PER_DIM: f64 = 1e-7;

/// One first-sighted operator: the match-screen data plus the predicate
/// itself, so a true cross-representation match can still be decided by
/// dense fingerprint — but only then.
#[derive(Debug, Clone)]
struct Sighting {
    trace: f64,
    probe: Vec<Complex>,
    pred: Arc<Predicate>,
    name: String,
    /// Whether `pred`'s dense fingerprint has been indexed in `names`.
    dense_indexed: bool,
}

/// Maps predicate matrices to display names and back.
///
/// Naming is keyed on quantised fingerprints. Dense matrices hash their
/// entries; factored predicates hash their `2ⁿ×r` factor
/// ([`Predicate::fingerprint`]), so the repeat queries an outline walk
/// issues at every node cost `O(2ⁿ·r)` and never materialise the dense
/// operator. Matching a factored predicate against operators known only
/// densely (user registrations, dense sightings) would need the dense
/// fingerprint — an `O(4ⁿ·r)` materialisation per fresh predicate, which
/// dominated large verifications. Instead every sighting records its
/// trace and its image `M·z` of a fixed pseudo-random **probe vector**
/// (`O(2ⁿ·r)` for factored predicates, and — unlike any spectral
/// invariant — sensitive to the eigenbasis rotations a unitary wp pass
/// produces). A fresh predicate densifies only when some prior sighting
/// agrees on both, i.e. only when a genuine cross-representation match is
/// on the table; the dense fingerprint then settles it exactly as before.
#[derive(Debug, Clone, Default)]
pub struct PredicateRegistry {
    /// Fingerprint (dense, or a factored predicate's native) → name.
    names: HashMap<u64, String>,
    /// Display/bare name → predicate, for `show` (densified on demand).
    matrices: HashMap<String, Arc<Predicate>>,
    /// Every first-sighted operator, with its match-screen data.
    sightings: Vec<Sighting>,
    next_var: usize,
}

/// The fixed probe vector for dimension `dim`: splitmix64-derived entries
/// in `[-1, 1]²`, identical across runs.
fn probe_vector(dim: usize) -> Vec<Complex> {
    (0..dim)
        .map(|i| {
            let mix = |salt: u64| {
                let mut z = (i as u64)
                    .wrapping_add(salt)
                    .wrapping_add(0x9e3779b97f4a7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
            };
            Complex {
                re: mix(0),
                im: mix(0x5851f42d4c957f2d),
            }
        })
        .collect()
}

/// `M·z` for the fixed probe `z`: `O(4ⁿ)` dense, `O(2ⁿ·r)` factored
/// (`V·(V†z)`).
fn probe_image(p: &Predicate) -> Vec<Complex> {
    let z = probe_vector(p.dim());
    match p {
        Predicate::Dense(m) => (0..m.rows())
            .map(|i| {
                m.row(i)
                    .iter()
                    .zip(&z)
                    .fold(Complex::ZERO, |acc, (a, b)| acc + *a * *b)
            })
            .collect(),
        Predicate::Factored(f) => {
            let v = f.v();
            let r = v.cols();
            // w = V†z
            let mut w = vec![Complex::ZERO; r];
            for (i, zi) in z.iter().enumerate() {
                for (k, wk) in w.iter_mut().enumerate() {
                    *wk += v[(i, k)].conj() * *zi;
                }
            }
            // y = V·w
            (0..v.rows())
                .map(|i| {
                    w.iter()
                        .enumerate()
                        .fold(Complex::ZERO, |acc, (k, wk)| acc + v[(i, k)] * *wk)
                })
                .collect()
        }
    }
}

/// Whether two (trace, probe) screens are compatible, i.e. the operators
/// *could* share a dense fingerprint. `false` is a proof they do not.
fn screens_match(ta: f64, pa: &[Complex], tb: f64, pb: &[Complex]) -> bool {
    if pa.len() != pb.len() {
        return false;
    }
    let tol = PROBE_TOL_PER_DIM * pa.len().max(1) as f64;
    (ta - tb).abs() <= tol
        && pa
            .iter()
            .zip(pb)
            .all(|(x, y)| (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol)
}

impl PredicateRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PredicateRegistry::default()
    }

    /// Registers a matrix under a user-facing display name (e.g.
    /// `invN[q1 q2]`); also indexes the bare name (`invN`) for `show`.
    pub fn register_named(&mut self, display: &str, m: &CMat) {
        let pred = Arc::new(Predicate::dense_from(m.clone()));
        let trace = m.trace_re();
        let probe = probe_image(&pred);
        self.promote_matches(trace, &probe);
        self.names
            .entry(m.fingerprint(FP_SCALE))
            .or_insert_with(|| display.to_string());
        self.sightings.push(Sighting {
            trace,
            probe,
            pred: pred.clone(),
            name: display.to_string(),
            dense_indexed: true,
        });
        self.matrices.insert(display.to_string(), pred.clone());
        if let Some(bare) = display.split('[').next() {
            self.matrices.entry(bare.to_string()).or_insert(pred);
        }
    }

    /// Returns the display name for a matrix, allocating a fresh
    /// `VARk[q̄]` name when unknown.
    pub fn name_of(&mut self, m: &CMat, register_display: &str) -> String {
        self.name_of_pred(&Predicate::dense_from(m.clone()), register_display)
    }

    /// [`PredicateRegistry::name_of`] for a [`Predicate`]. Repeat queries
    /// hit the native fingerprint; a first sighting densifies only when
    /// the trace/probe screen admits a match against a prior sighting.
    pub fn name_of_pred(&mut self, p: &Predicate, register_display: &str) -> String {
        let native_fp = p.fingerprint(FP_SCALE);
        if let Some(n) = self.names.get(&native_fp) {
            return n.clone();
        }
        let trace = p.trace_re();
        let probe = probe_image(p);
        let possible = self.promote_matches(trace, &probe);
        let shared = Arc::new(p.clone());
        let dense_indexed = possible || !p.is_factored();
        if dense_indexed {
            // A match is on the table (or dense hashing is free): decide
            // by dense fingerprint, exactly as a dense-only index would.
            let dense_fp = shared.dense().fingerprint(FP_SCALE);
            if let Some(n) = self.names.get(&dense_fp).cloned() {
                self.names.insert(native_fp, n.clone());
                return n;
            }
            let display = self.fresh_name(register_display);
            self.names.insert(dense_fp, display.clone());
            if native_fp != dense_fp {
                self.names.insert(native_fp, display.clone());
            }
            self.record_sighting(trace, probe, shared, display, true)
        } else {
            // Provably fresh: every prior sighting's screen separates it.
            let display = self.fresh_name(register_display);
            self.names.insert(native_fp, display.clone());
            self.record_sighting(trace, probe, shared, display, false)
        }
    }

    /// Dense-indexes every prior sighting whose screen is compatible with
    /// `(trace, probe)`; returns whether any was.
    fn promote_matches(&mut self, trace: f64, probe: &[Complex]) -> bool {
        let mut any = false;
        for i in 0..self.sightings.len() {
            let s = &self.sightings[i];
            if !screens_match(trace, probe, s.trace, &s.probe) {
                continue;
            }
            any = true;
            if !self.sightings[i].dense_indexed {
                let fp = self.sightings[i].pred.dense().fingerprint(FP_SCALE);
                let name = self.sightings[i].name.clone();
                self.names.entry(fp).or_insert(name);
                self.sightings[i].dense_indexed = true;
            }
        }
        any
    }

    /// Files a sighting and indexes its matrices; returns the display name.
    fn record_sighting(
        &mut self,
        trace: f64,
        probe: Vec<Complex>,
        pred: Arc<Predicate>,
        display: String,
        dense_indexed: bool,
    ) -> String {
        self.sightings.push(Sighting {
            trace,
            probe,
            pred: pred.clone(),
            name: display.clone(),
            dense_indexed,
        });
        self.matrices.insert(display.clone(), pred.clone());
        if let Some(bare) = display.split('[').next() {
            self.matrices.insert(bare.to_string(), pred);
        }
        display
    }

    /// Allocates the next `VARk[q̄]` display name.
    fn fresh_name(&mut self, register_display: &str) -> String {
        let bare = format!("VAR{}", self.next_var);
        self.next_var += 1;
        format!("{bare}[{register_display}]")
    }

    /// Looks up the matrix behind a (bare or full) name, for `show`;
    /// factored predicates materialise (and cache) their dense form here.
    pub fn matrix(&self, name: &str) -> Option<&CMat> {
        self.matrices.get(name).map(|p| p.dense())
    }

    /// All registered display names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.matrices.keys().map(String::as_str)
    }
}

/// Renders an assertion as `{ name1 name2 … }` using (and extending) the
/// registry.
pub fn render_assertion(
    a: &crate::assertion::Assertion,
    registry: &mut PredicateRegistry,
    register_display: &str,
) -> String {
    let names: Vec<String> = a
        .ops()
        .iter()
        .map(|m| registry.name_of_pred(m, register_display))
        .collect();
    format!("{{ {} }}", names.join(" "))
}

/// Renders the annotated proof outline in the tool's output format.
pub fn render_outline(
    qubits: &[String],
    user_pre: Option<&str>,
    ann: &Annotated,
    post_display: &str,
    registry: &mut PredicateRegistry,
) -> String {
    let register_display = qubits.join(" ");
    let mut out = String::new();
    let _ = writeln!(out, "proof [{register_display}] :");
    if let Some(pre) = user_pre {
        let _ = writeln!(out, "  {pre};");
    }
    let vc = render_assertion(&ann.pre, registry, &register_display);
    let _ = writeln!(out, "  {vc}; // the Veri. Con.");
    render_node(&mut out, ann, 1, registry, &register_display, false);
    let _ = writeln!(out, ";\n  {post_display}");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Renders a node; `with_pre` controls whether the node's own computed
/// precondition is printed before it (sequence items print their own).
fn render_node(
    out: &mut String,
    ann: &Annotated,
    depth: usize,
    registry: &mut PredicateRegistry,
    reg_disp: &str,
    with_pre: bool,
) {
    if with_pre {
        let pre = render_assertion(&ann.pre, registry, reg_disp);
        indent(out, depth);
        out.push_str(&pre);
        out.push_str(";\n");
    }
    match &ann.node {
        AnnotatedNode::Skip => {
            indent(out, depth);
            out.push_str("skip");
        }
        AnnotatedNode::Abort => {
            indent(out, depth);
            out.push_str("abort");
        }
        AnnotatedNode::Assert => {
            indent(out, depth);
            let a = render_assertion(&ann.pre, registry, reg_disp);
            out.push_str(&a);
        }
        AnnotatedNode::Init { qubits } => {
            indent(out, depth);
            let _ = write!(out, "[{}] := 0", qubits.join(" "));
        }
        AnnotatedNode::Unitary { qubits, op } => {
            indent(out, depth);
            let _ = write!(out, "[{}] *= {}", qubits.join(" "), op);
        }
        AnnotatedNode::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(";\n");
                }
                render_node(out, item, depth, registry, reg_disp, i > 0);
            }
        }
        AnnotatedNode::NDet(a, b) => {
            indent(out, depth);
            out.push_str("(\n");
            render_node(out, a, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("#\n");
            render_node(out, b, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push(')');
        }
        AnnotatedNode::If {
            meas,
            qubits,
            then_branch,
            else_branch,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "if {}[{}] then", meas, qubits.join(" "));
            render_node(out, then_branch, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("else\n");
            render_node(out, else_branch, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("end");
        }
        AnnotatedNode::While {
            meas,
            qubits,
            invariant,
            body,
            ..
        } => {
            let inv = render_assertion(invariant, registry, reg_disp);
            indent(out, depth);
            let _ = writeln!(
                out,
                "{{ inv : {} }};",
                inv.trim_start_matches("{ ").trim_end_matches(" }")
            );
            indent(out, depth);
            let _ = writeln!(out, "while {}[{}] do", meas, qubits.join(" "));
            render_node(out, body, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("end");
        }
    }
}

/// Pretty-prints a matrix for `show NAME end` output.
pub fn render_matrix(name: &str, m: &CMat) -> String {
    format!("{name} =\n{m}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Assertion;
    use nqpv_linalg::CVec;

    #[test]
    fn registry_names_and_allocates() {
        let mut reg = PredicateRegistry::new();
        let p0 = CVec::basis(2, 0).projector();
        reg.register_named("P0[q]", &p0);
        assert_eq!(reg.name_of(&p0, "q"), "P0[q]");
        let other = CMat::identity(2).scale_re(0.5);
        let n = reg.name_of(&other, "q");
        assert_eq!(n, "VAR0[q]");
        // Stable on re-query.
        assert_eq!(reg.name_of(&other, "q"), "VAR0[q]");
        // Bare and full lookups work.
        assert!(reg.matrix("VAR0").is_some());
        assert!(reg.matrix("VAR0[q]").is_some());
        assert!(reg.matrix("P0").is_some());
    }

    #[test]
    fn factored_predicates_name_stably_across_representations() {
        use crate::assertion::Predicate;
        let mut reg = PredicateRegistry::new();
        let v = CMat::from_real(4, 1, &[1.0, 0.0, 0.0, 0.0]);
        let p = Predicate::from_factor(v);
        assert!(p.is_factored());
        let n1 = reg.name_of_pred(&p, "q1 q2");
        // Repeat queries hit the native (factor) fingerprint.
        assert_eq!(reg.name_of_pred(&p, "q1 q2"), n1);
        // A dense predicate holding the same operator resolves to the
        // same name instead of allocating a fresh VAR.
        let dense = Predicate::dense_from(p.dense().clone());
        assert_eq!(reg.name_of_pred(&dense, "q1 q2"), n1);
        assert_eq!(reg.next_var, 1);
    }

    #[test]
    fn render_assertion_uses_names() {
        let mut reg = PredicateRegistry::new();
        let p0 = CVec::basis(2, 0).projector();
        reg.register_named("P0[q]", &p0);
        let a = Assertion::from_ops(2, vec![p0, CMat::identity(2)]).unwrap();
        let s = render_assertion(&a, &mut reg, "q");
        assert!(s.contains("P0[q]"));
        assert!(s.contains("VAR0[q]"));
    }

    #[test]
    fn matrix_rendering() {
        let m = CMat::identity(2);
        let s = render_matrix("I", &m);
        assert!(s.starts_with("I =\n"));
        assert!(s.contains("1.0000"));
    }
}
