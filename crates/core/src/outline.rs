//! Proof-outline rendering and the predicate name registry.
//!
//! NQPV annotates "every sub-program statement … with the corresponding
//! pre- and postconditions", naming freshly computed predicates `VAR0`,
//! `VAR1`, … (paper Sec. 6.2); `show NAME end` then prints the matrix.
//! [`PredicateRegistry`] owns the fingerprint→name map and the matrices;
//! [`render_outline`] produces the annotated listing.

use crate::transformer::{Annotated, AnnotatedNode};
use nqpv_linalg::CMat;
use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;

/// Fingerprint quantisation used for name lookup.
const FP_SCALE: f64 = 1e8;

/// Maps predicate matrices to display names and back. Matrices are held
/// behind shared handles, so the bare-name/display-name aliases and the
/// factored-predicate rendering path never copy a `2ⁿ×2ⁿ` matrix.
#[derive(Debug, Clone, Default)]
pub struct PredicateRegistry {
    names: HashMap<u64, String>,
    matrices: HashMap<String, Arc<CMat>>,
    next_var: usize,
}

impl PredicateRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PredicateRegistry::default()
    }

    /// Registers a matrix under a user-facing display name (e.g.
    /// `invN[q1 q2]`); also indexes the bare name (`invN`) for `show`.
    pub fn register_named(&mut self, display: &str, m: &CMat) {
        let shared = Arc::new(m.clone());
        self.names
            .entry(m.fingerprint(FP_SCALE))
            .or_insert_with(|| display.to_string());
        self.matrices.insert(display.to_string(), shared.clone());
        if let Some(bare) = display.split('[').next() {
            self.matrices.entry(bare.to_string()).or_insert(shared);
        }
    }

    /// Returns the display name for a matrix, allocating a fresh
    /// `VARk[q̄]` name when unknown.
    pub fn name_of(&mut self, m: &CMat, register_display: &str) -> String {
        self.name_of_with(m, register_display, |m| Arc::new(m.clone()))
    }

    /// [`PredicateRegistry::name_of`] for a [`Predicate`]: already-named
    /// matrices cost one fingerprint pass and zero copies; fresh `VARk`
    /// entries reuse the predicate's `Arc`-cached dense form instead of
    /// cloning it ([`Predicate::dense_shared`]).
    pub fn name_of_pred(
        &mut self,
        p: &crate::assertion::Predicate,
        register_display: &str,
    ) -> String {
        self.name_of_with(p.dense(), register_display, |_| p.dense_shared())
    }

    fn name_of_with(
        &mut self,
        m: &CMat,
        register_display: &str,
        share: impl FnOnce(&CMat) -> Arc<CMat>,
    ) -> String {
        let fp = m.fingerprint(FP_SCALE);
        if let Some(n) = self.names.get(&fp) {
            return n.clone();
        }
        let bare = format!("VAR{}", self.next_var);
        self.next_var += 1;
        let display = format!("{bare}[{register_display}]");
        self.names.insert(fp, display.clone());
        let shared = share(m);
        self.matrices.insert(display.clone(), shared.clone());
        self.matrices.insert(bare, shared);
        display
    }

    /// Looks up the matrix behind a (bare or full) name, for `show`.
    pub fn matrix(&self, name: &str) -> Option<&CMat> {
        self.matrices.get(name).map(Arc::as_ref)
    }

    /// All registered display names (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.matrices.keys().map(String::as_str)
    }
}

/// Renders an assertion as `{ name1 name2 … }` using (and extending) the
/// registry.
pub fn render_assertion(
    a: &crate::assertion::Assertion,
    registry: &mut PredicateRegistry,
    register_display: &str,
) -> String {
    let names: Vec<String> = a
        .ops()
        .iter()
        .map(|m| registry.name_of_pred(m, register_display))
        .collect();
    format!("{{ {} }}", names.join(" "))
}

/// Renders the annotated proof outline in the tool's output format.
pub fn render_outline(
    qubits: &[String],
    user_pre: Option<&str>,
    ann: &Annotated,
    post_display: &str,
    registry: &mut PredicateRegistry,
) -> String {
    let register_display = qubits.join(" ");
    let mut out = String::new();
    let _ = writeln!(out, "proof [{register_display}] :");
    if let Some(pre) = user_pre {
        let _ = writeln!(out, "  {pre};");
    }
    let vc = render_assertion(&ann.pre, registry, &register_display);
    let _ = writeln!(out, "  {vc}; // the Veri. Con.");
    render_node(&mut out, ann, 1, registry, &register_display, false);
    let _ = writeln!(out, ";\n  {post_display}");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Renders a node; `with_pre` controls whether the node's own computed
/// precondition is printed before it (sequence items print their own).
fn render_node(
    out: &mut String,
    ann: &Annotated,
    depth: usize,
    registry: &mut PredicateRegistry,
    reg_disp: &str,
    with_pre: bool,
) {
    if with_pre {
        let pre = render_assertion(&ann.pre, registry, reg_disp);
        indent(out, depth);
        out.push_str(&pre);
        out.push_str(";\n");
    }
    match &ann.node {
        AnnotatedNode::Skip => {
            indent(out, depth);
            out.push_str("skip");
        }
        AnnotatedNode::Abort => {
            indent(out, depth);
            out.push_str("abort");
        }
        AnnotatedNode::Assert => {
            indent(out, depth);
            let a = render_assertion(&ann.pre, registry, reg_disp);
            out.push_str(&a);
        }
        AnnotatedNode::Init { qubits } => {
            indent(out, depth);
            let _ = write!(out, "[{}] := 0", qubits.join(" "));
        }
        AnnotatedNode::Unitary { qubits, op } => {
            indent(out, depth);
            let _ = write!(out, "[{}] *= {}", qubits.join(" "), op);
        }
        AnnotatedNode::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(";\n");
                }
                render_node(out, item, depth, registry, reg_disp, i > 0);
            }
        }
        AnnotatedNode::NDet(a, b) => {
            indent(out, depth);
            out.push_str("(\n");
            render_node(out, a, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("#\n");
            render_node(out, b, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push(')');
        }
        AnnotatedNode::If {
            meas,
            qubits,
            then_branch,
            else_branch,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "if {}[{}] then", meas, qubits.join(" "));
            render_node(out, then_branch, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("else\n");
            render_node(out, else_branch, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("end");
        }
        AnnotatedNode::While {
            meas,
            qubits,
            invariant,
            body,
            ..
        } => {
            let inv = render_assertion(invariant, registry, reg_disp);
            indent(out, depth);
            let _ = writeln!(
                out,
                "{{ inv : {} }};",
                inv.trim_start_matches("{ ").trim_end_matches(" }")
            );
            indent(out, depth);
            let _ = writeln!(out, "while {}[{}] do", meas, qubits.join(" "));
            render_node(out, body, depth + 1, registry, reg_disp, true);
            out.push('\n');
            indent(out, depth);
            out.push_str("end");
        }
    }
}

/// Pretty-prints a matrix for `show NAME end` output.
pub fn render_matrix(name: &str, m: &CMat) -> String {
    format!("{name} =\n{m}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Assertion;
    use nqpv_linalg::CVec;

    #[test]
    fn registry_names_and_allocates() {
        let mut reg = PredicateRegistry::new();
        let p0 = CVec::basis(2, 0).projector();
        reg.register_named("P0[q]", &p0);
        assert_eq!(reg.name_of(&p0, "q"), "P0[q]");
        let other = CMat::identity(2).scale_re(0.5);
        let n = reg.name_of(&other, "q");
        assert_eq!(n, "VAR0[q]");
        // Stable on re-query.
        assert_eq!(reg.name_of(&other, "q"), "VAR0[q]");
        // Bare and full lookups work.
        assert!(reg.matrix("VAR0").is_some());
        assert!(reg.matrix("VAR0[q]").is_some());
        assert!(reg.matrix("P0").is_some());
    }

    #[test]
    fn render_assertion_uses_names() {
        let mut reg = PredicateRegistry::new();
        let p0 = CVec::basis(2, 0).projector();
        reg.register_named("P0[q]", &p0);
        let a = Assertion::from_ops(2, vec![p0, CMat::identity(2)]).unwrap();
        let s = render_assertion(&a, &mut reg, "q");
        assert!(s.contains("P0[q]"));
        assert!(s.contains("VAR0[q]"));
    }

    #[test]
    fn matrix_rendering() {
        let m = CMat::identity(2);
        let s = render_matrix("I", &m);
        assert!(s.starts_with("I =\n"));
        assert!(s.contains("1.0000"));
    }
}
