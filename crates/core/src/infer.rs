//! Loop-invariant inference by wlp fixpoint iteration.
//!
//! The paper's tool requires the user to supply loop invariants ("to ease
//! the burden on human users so that they can focus on more challenging
//! parts such as specifying invariants for while loops", Sec. 6). Lemma
//! A.2 shows `wlp.while.Ψ` is a fixed point of
//! `Θ ↦ P⁰(Ψ) + P¹(wlp.body.Θ)`; iterating that functor from the top
//! element `{I}` produces the decreasing Kleene sequence of Fig. 5's
//! `M_i^η` sets. When the sequence *stabilises* after finitely many steps,
//! the result is a genuine invariant — found automatically.
//!
//! Stabilisation is not guaranteed (the chain can be infinite and the set
//! can grow with the number of scheduler prefixes), so the inference is a
//! best-effort assistant: on success the candidate is re-validated with
//! the standard invariant side condition before being returned.

use crate::assertion::Assertion;
use crate::error::VerifError;
use crate::transformer::{precondition, VcOptions};
use nqpv_lang::Stmt;
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_solver::Verdict;
use std::collections::HashMap;

/// Options for invariant inference.
#[derive(Debug, Clone, Copy)]
pub struct InferOptions {
    /// Maximum Kleene iterations before giving up.
    pub max_iters: usize,
    /// Verification-condition options used for the inner wlp passes and
    /// the final validation.
    pub vc: VcOptions,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            max_iters: 64,
            vc: VcOptions::default(),
        }
    }
}

/// The outcome of an inference attempt.
#[derive(Debug, Clone)]
pub enum InferredInvariant {
    /// The Kleene iteration stabilised and the candidate passed the
    /// invariant side condition.
    Found {
        /// The inferred invariant.
        invariant: Assertion,
        /// Iterations until stabilisation.
        iterations: usize,
    },
    /// The iteration did not stabilise within the budget.
    NoFixpoint {
        /// The last candidate computed (a valid *approximation from
        /// above*, not necessarily an invariant).
        last: Assertion,
    },
}

/// Attempts to infer an invariant for `while meas[qubits] do body end`
/// against postcondition `post`, by iterating
/// `Θ_{k+1} = P⁰(Ψ) + P¹(wlp.body.Θ_k)` from `Θ_0 = {I}`.
///
/// # Errors
///
/// Propagates resolution/transformer failures (the body must itself be
/// verifiable, i.e. nested loops need their own invariants).
pub fn infer_invariant(
    meas: &str,
    qubits: &[String],
    body: &Stmt,
    post: &Assertion,
    lib: &OperatorLibrary,
    reg: &Register,
    opts: InferOptions,
) -> Result<InferredInvariant, VerifError> {
    let m = lib.measurement(meas)?;
    let pos = reg.positions(qubits)?;
    if m.n_qubits() != pos.len() {
        return Err(VerifError::ArityMismatch {
            op: meas.to_string(),
            expected: m.n_qubits(),
            got: pos.len(),
        });
    }
    // Local-form projectors: the Kleene iteration sandwiches every
    // candidate predicate per step, so the strided kernels matter here —
    // and factored candidates stay factored through every sandwich.
    let n = reg.n_qubits();
    let p0 = m.p0().clone();
    let p1 = m.p1().clone();
    let p0_post = post.sandwich_local(&p0, &pos, n);

    let rankings = HashMap::new();
    let mut theta = Assertion::identity(reg.dim());
    let mut fp = fingerprint(&theta);
    for k in 0..opts.max_iters {
        let wlp_body = precondition(body, &theta, lib, reg, opts.vc, &rankings)?;
        let next = p0_post
            .sum_pairwise(&wlp_body.sandwich_local(&p1, &pos, n))?
            .check_size(4096)?;
        let next_fp = fingerprint(&next);
        if next_fp == fp {
            // Stabilised: validate the candidate as an invariant.
            let wlp_once = precondition(body, &next, lib, reg, opts.vc, &rankings)?;
            // Invariant condition: Θ ⊑_inf wlp.body.(P⁰(Ψ)+P¹(Θ)). Since
            // next is the fixpoint, P⁰(Ψ)+P¹(next) = next, so check
            // next ⊑_inf wlp.body.next directly… but wlp.body.next was
            // computed against `next` already — close the loop explicitly:
            let phi = p0_post.sum_pairwise(&next.sandwich_local(&p1, &pos, n))?;
            let wlp_phi = precondition(body, &phi, lib, reg, opts.vc, &rankings)?;
            let _ = wlp_once;
            match next.le_inf(&wlp_phi, opts.vc.lowner)? {
                Verdict::Holds => {
                    return Ok(InferredInvariant::Found {
                        invariant: next,
                        iterations: k + 1,
                    })
                }
                _ => {
                    return Ok(InferredInvariant::NoFixpoint { last: next });
                }
            }
        }
        theta = next;
        fp = next_fp;
    }
    Ok(InferredInvariant::NoFixpoint { last: theta })
}

fn fingerprint(a: &Assertion) -> Vec<u64> {
    let mut v: Vec<u64> = a.ops().iter().map(|m| m.fingerprint(1e7)).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::parse_stmt;
    use nqpv_quantum::ket;

    fn setup(names: &[&str]) -> (OperatorLibrary, Register) {
        (
            OperatorLibrary::with_builtins(),
            Register::new(names).unwrap(),
        )
    }

    #[test]
    fn infers_the_nontermination_invariant_of_a_spin_loop() {
        // while M01[q] (continue on 1) do skip end, post {0}: the inferred
        // invariant is P1 — exactly "mass in the continue subspace never
        // leaves".
        let (lib, reg) = setup(&["q"]);
        let body = parse_stmt("skip").unwrap();
        let post = Assertion::zero(2);
        let out = infer_invariant(
            "M01",
            &["q".to_string()],
            &body,
            &post,
            &lib,
            &reg,
            InferOptions::default(),
        )
        .unwrap();
        match out {
            InferredInvariant::Found {
                invariant,
                iterations,
            } => {
                assert_eq!(invariant.len(), 1);
                assert!(invariant.ops()[0].approx_eq(&ket("1").projector(), 1e-9));
                assert!(iterations <= 3);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn infers_the_qwalk_invariant() {
        // The Sec. 5.3 walk: inference should land on a fixpoint whose
        // expectation behaviour matches the paper's hand-written N (the
        // fixpoint need not be literally N, but must be a valid invariant
        // at least as strong on the initial state).
        let (lib, reg) = setup(&["q1", "q2"]);
        let body =
            parse_stmt("( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 )").unwrap();
        let post = Assertion::zero(4);
        let out = infer_invariant(
            "MQWalk",
            &["q1".to_string(), "q2".to_string()],
            &body,
            &post,
            &lib,
            &reg,
            InferOptions {
                max_iters: 48,
                ..InferOptions::default()
            },
        )
        .unwrap();
        match out {
            InferredInvariant::Found { invariant, .. } => {
                // A valid invariant for {0}-post must still give full
                // expectation on |00⟩ (the walk never terminates from it).
                let rho = ket("00").projector();
                assert!(
                    invariant.expectation(&rho) > 1.0 - 1e-6,
                    "inferred invariant loses the |00⟩ mass"
                );
            }
            InferredInvariant::NoFixpoint { last } => {
                // Acceptable fallback: the approximant still dominates |00⟩.
                assert!(last.expectation(&ket("00").projector()) > 1.0 - 1e-6);
            }
        }
    }

    #[test]
    fn terminating_loop_infers_identity_like_invariant() {
        // while M01[q] do q *= H end with post {P0}: wlp.while.{P0} = I
        // (the loop a.s. terminates in |0⟩), so the fixpoint is {I}.
        let (lib, reg) = setup(&["q"]);
        let body = parse_stmt("[q] *= H").unwrap();
        let post = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
        let out = infer_invariant(
            "M01",
            &["q".to_string()],
            &body,
            &post,
            &lib,
            &reg,
            InferOptions {
                max_iters: 200,
                ..InferOptions::default()
            },
        )
        .unwrap();
        match out {
            InferredInvariant::Found { invariant, .. } => {
                // Exp under the invariant must be (numerically close to)
                // full trace everywhere.
                for rho in crate::correctness::sample_states(2, 6, 5) {
                    assert!(invariant.expectation(&rho) > rho.trace_re() - 1e-4);
                }
            }
            InferredInvariant::NoFixpoint { last } => {
                // The chain converges geometrically; even without exact
                // stabilisation the approximant should be near I.
                let rho = ket("1").projector();
                assert!(last.expectation(&rho) > 0.9);
            }
        }
    }

    #[test]
    fn arity_errors_propagate() {
        let (lib, reg) = setup(&["q1", "q2"]);
        let body = parse_stmt("skip").unwrap();
        let post = Assertion::zero(4);
        let err = infer_invariant(
            "M01",
            &["q1".to_string(), "q2".to_string()],
            &body,
            &post,
            &lib,
            &reg,
            InferOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifError::ArityMismatch { .. }));
    }
}
