//! Semantic quantum assertions: finite sets of quantum predicates.
//!
//! The paper takes `A ≜ 2^{P(H_V)}` — sets of hermitian operators `M` with
//! `0 ⊑ M ⊑ I` — as its assertion language (Sec. 4), ordered by
//! `Θ ⊑_inf Ψ  ⇔  ∀ρ. inf_{M∈Θ} tr(Mρ) ≤ inf_{N∈Ψ} tr(Nρ)`.
//! [`Assertion`] is the finite, concrete realisation used by the verifier
//! (the tool restricts to finite assertions, Sec. 6.3).

use nqpv_lang::AssertionExpr;
use nqpv_linalg::{embed, CMat};
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_solver::{assertion_le, LownerOptions, Verdict};
use std::collections::HashSet;
use std::fmt;

use crate::error::VerifError;

/// A finite set of quantum predicates over a fixed register space.
///
/// # Examples
///
/// ```
/// use nqpv_core::Assertion;
/// use nqpv_linalg::CMat;
/// let a = Assertion::identity(2);
/// assert_eq!(a.dim(), 2);
/// assert_eq!(a.ops().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Assertion {
    dim: usize,
    ops: Vec<CMat>,
}

impl Assertion {
    /// Creates an assertion from explicit predicate matrices.
    ///
    /// # Errors
    ///
    /// Rejects empty sets and shape mismatches; elements are *not* checked
    /// for the predicate interval here (wlp-generated intermediates can
    /// carry rounding slack) — use [`Assertion::validate_predicates`] at
    /// user-input boundaries.
    pub fn from_ops(dim: usize, ops: Vec<CMat>) -> Result<Self, VerifError> {
        if ops.is_empty() {
            return Err(VerifError::EmptyAssertion);
        }
        for m in &ops {
            if m.rows() != dim || m.cols() != dim {
                return Err(VerifError::AssertionShape {
                    expected: dim,
                    got: m.rows(),
                });
            }
        }
        Ok(Assertion { dim, ops }.deduped())
    }

    /// The singleton `{I}` — the quantum analogue of `true`.
    pub fn identity(dim: usize) -> Self {
        Assertion {
            dim,
            ops: vec![CMat::identity(dim)],
        }
    }

    /// The singleton `{0}` — the quantum analogue of `false`.
    pub fn zero(dim: usize) -> Self {
        Assertion {
            dim,
            ops: vec![CMat::zeros(dim, dim)],
        }
    }

    /// Resolves a syntactic assertion against a library and register:
    /// every `P[q̄]` term is embedded as a cylinder extension onto the full
    /// register space.
    ///
    /// # Errors
    ///
    /// Returns [`VerifError`] on unknown operators, kind/arity mismatches
    /// or invalid predicates.
    pub fn from_expr(
        expr: &AssertionExpr,
        lib: &OperatorLibrary,
        reg: &Register,
    ) -> Result<Self, VerifError> {
        let n = reg.n_qubits();
        let mut ops = Vec::with_capacity(expr.terms.len());
        for term in &expr.terms {
            let m = lib.predicate(&term.op).map_err(VerifError::Library)?;
            let pos = reg.positions(&term.qubits).map_err(VerifError::Register)?;
            let k = m.rows().trailing_zeros() as usize;
            if k != pos.len() {
                return Err(VerifError::ArityMismatch {
                    op: term.op.clone(),
                    expected: k,
                    got: pos.len(),
                });
            }
            ops.push(embed(&m, &pos, n));
        }
        Assertion::from_ops(reg.dim(), ops)
    }

    /// The space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The predicate set.
    pub fn ops(&self) -> &[CMat] {
        &self.ops
    }

    /// Number of predicates in the set.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the set is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The guaranteed expected satisfaction `Exp(ρ ⊨ Θ) = inf_M tr(Mρ)`
    /// (Definition 4.1).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, rho: &CMat) -> f64 {
        assert_eq!(rho.rows(), self.dim, "state dimension mismatch");
        self.ops
            .iter()
            .map(|m| m.trace_product(rho).re)
            .fold(f64::INFINITY, f64::min)
    }

    /// Element-wise map over the predicate set (used by the wp/wlp
    /// transformer steps).
    pub fn map<F: FnMut(&CMat) -> CMat>(&self, f: F) -> Assertion {
        Assertion {
            dim: self.dim,
            ops: self.ops.iter().map(f).collect(),
        }
        .deduped()
    }

    /// Set union `Θ ∪ Ψ` (rule (Union) / nondeterministic choice in Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`VerifError::AssertionShape`] on dimension mismatch.
    pub fn union(&self, other: &Assertion) -> Result<Assertion, VerifError> {
        if self.dim != other.dim {
            return Err(VerifError::AssertionShape {
                expected: self.dim,
                got: other.dim,
            });
        }
        let mut ops = self.ops.clone();
        ops.extend(other.ops.iter().cloned());
        Ok(Assertion { dim: self.dim, ops }.deduped())
    }

    /// Element-wise (cartesian) sums `{A + B : A ∈ Θ, B ∈ Ψ}` — the
    /// measurement-combination of rule (Meas) and the `P⁰(Ψ)+P¹(Θ)`
    /// construction of rule (While).
    ///
    /// # Errors
    ///
    /// Returns [`VerifError::AssertionShape`] on dimension mismatch.
    pub fn sum_pairwise(&self, other: &Assertion) -> Result<Assertion, VerifError> {
        if self.dim != other.dim {
            return Err(VerifError::AssertionShape {
                expected: self.dim,
                got: other.dim,
            });
        }
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for a in &self.ops {
            for b in &other.ops {
                ops.push(a.add_mat(b));
            }
        }
        Ok(Assertion { dim: self.dim, ops }.deduped())
    }

    /// Decides `self ⊑_inf other` with the solver.
    ///
    /// # Errors
    ///
    /// Wraps solver input failures.
    pub fn le_inf(&self, other: &Assertion, opts: LownerOptions) -> Result<Verdict, VerifError> {
        assertion_le(&self.ops, &other.ops, opts).map_err(VerifError::Solver)
    }

    /// [`Assertion::le_inf`] through an optional **verdict cache**: the
    /// decision is keyed by the exact operator bits of both sides plus the
    /// solver options, and looked up via the
    /// [`TransformerCache`](crate::cache::TransformerCache) hook before the
    /// solver runs. Loop-heavy corpora repeat the same `⊑_inf` queries many
    /// times (invariant checks, cut assertions, final comparisons of
    /// byte-identical jobs); a shared cache answers all but the first.
    ///
    /// # Errors
    ///
    /// Same as [`Assertion::le_inf`]. Solver errors are never cached.
    pub fn le_inf_cached(
        &self,
        other: &Assertion,
        opts: LownerOptions,
        cache: Option<&dyn crate::cache::TransformerCache>,
    ) -> Result<Verdict, VerifError> {
        let Some(cache) = cache else {
            return self.le_inf(other, opts);
        };
        let key =
            crate::cache::verdict_key(crate::cache::VERDICT_TAG_INF, &self.ops, &other.ops, &opts);
        if let Some(v) = cache.get_verdict(key) {
            return Ok(v);
        }
        let v = self.le_inf(other, opts)?;
        cache.put_verdict(key, &v);
        Ok(v)
    }

    /// Validates that every element lies in the predicate interval
    /// `0 ⊑ M ⊑ I` (within `tol`).
    pub fn validate_predicates(&self, tol: f64) -> bool {
        self.ops.iter().all(|m| nqpv_linalg::is_predicate(m, tol))
    }

    /// `true` if the two assertions contain the same predicates (as
    /// matrices, within `tol`), regardless of order. Used by the proof
    /// checker to match rule premises *syntactically* — semantic weakening
    /// must go through the (Imp) rule, as in the paper.
    pub fn approx_set_eq(&self, other: &Assertion, tol: f64) -> bool {
        if self.dim != other.dim || self.ops.len() != other.ops.len() {
            return false;
        }
        let mut used = vec![false; other.ops.len()];
        'outer: for a in &self.ops {
            for (j, b) in other.ops.iter().enumerate() {
                if !used[j] && a.approx_eq(b, tol) {
                    used[j] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// Caps the set size, returning an error if exceeded (nondeterministic
    /// branching multiplies set sizes; see `VcOptions::max_set`).
    pub(crate) fn check_size(self, max: usize) -> Result<Self, VerifError> {
        if self.ops.len() > max {
            Err(VerifError::SetBlowup { limit: max })
        } else {
            Ok(self)
        }
    }

    fn deduped(mut self) -> Self {
        if self.ops.len() <= 1 {
            return self;
        }
        let mut seen = HashSet::new();
        self.ops.retain(|m| seen.insert(m.fingerprint(1e8)));
        self
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{ {} predicate(s) on dim {} }}",
            self.ops.len(),
            self.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::OpApp;
    use nqpv_quantum::ket;

    fn reg2() -> Register {
        Register::new(&["q1", "q2"]).unwrap()
    }

    #[test]
    fn from_expr_embeds_onto_register() {
        let lib = OperatorLibrary::with_builtins();
        let expr = AssertionExpr::new(vec![OpApp::new("P0", &["q2"])]);
        let a = Assertion::from_expr(&expr, &lib, &reg2()).unwrap();
        assert_eq!(a.dim(), 4);
        // P0 on q2 = I ⊗ |0⟩⟨0|: expectation 1 on |10⟩, 0 on |11⟩.
        assert!((a.expectation(&ket("10").projector()) - 1.0).abs() < 1e-10);
        assert!(a.expectation(&ket("11").projector()).abs() < 1e-10);
    }

    #[test]
    fn expectation_takes_the_infimum() {
        let lib = OperatorLibrary::with_builtins();
        let expr = AssertionExpr::new(vec![OpApp::new("P0", &["q1"]), OpApp::new("P1", &["q1"])]);
        let a = Assertion::from_expr(&expr, &lib, &reg2()).unwrap();
        // On any state, min(tr(P0ρ), tr(P1ρ)) ≤ 1/2·tr(ρ).
        let rho = ket("0+").projector();
        assert!(a.expectation(&rho) < 1e-10 + 0.0f64.max(0.0)); // P1 gives 0
    }

    #[test]
    fn union_and_sum_shapes() {
        let a = Assertion::identity(2);
        let b = Assertion::zero(2);
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        let s = a.sum_pairwise(&b).unwrap();
        assert_eq!(s.len(), 1); // I + 0 = I
        let bad = Assertion::identity(4);
        assert!(a.union(&bad).is_err());
    }

    #[test]
    fn dedupe_collapses_equal_predicates() {
        let i = CMat::identity(2);
        let a = Assertion::from_ops(2, vec![i.clone(), i.clone(), i]).unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn le_inf_basic_directions() {
        let half = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(0.5)]).unwrap();
        let one = Assertion::identity(2);
        assert!(half.le_inf(&one, LownerOptions::default()).unwrap().holds());
        assert!(!one.le_inf(&half, LownerOptions::default()).unwrap().holds());
        // {0} ⊑_inf anything.
        let zero = Assertion::zero(2);
        assert!(zero
            .le_inf(&half, LownerOptions::default())
            .unwrap()
            .holds());
    }

    #[test]
    fn arity_and_kind_errors() {
        let lib = OperatorLibrary::with_builtins();
        let bad_arity = AssertionExpr::new(vec![OpApp::new("P0", &["q1", "q2"])]);
        assert!(matches!(
            Assertion::from_expr(&bad_arity, &lib, &reg2()),
            Err(VerifError::ArityMismatch { .. })
        ));
        let not_pred = AssertionExpr::new(vec![OpApp::new("X", &["q1"])]);
        assert!(matches!(
            Assertion::from_expr(&not_pred, &lib, &reg2()),
            Err(VerifError::Library(_))
        ));
        let unknown_q = AssertionExpr::new(vec![OpApp::new("P0", &["zz"])]);
        assert!(matches!(
            Assertion::from_expr(&unknown_q, &lib, &reg2()),
            Err(VerifError::Register(_))
        ));
    }

    #[test]
    fn validate_predicates_flags_out_of_interval() {
        let ok = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(0.3)]).unwrap();
        assert!(ok.validate_predicates(1e-8));
        let bad = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(1.7)]).unwrap();
        assert!(!bad.validate_predicates(1e-8));
    }
}
