//! Semantic quantum assertions: finite sets of quantum predicates.
//!
//! The paper takes `A ≜ 2^{P(H_V)}` — sets of hermitian operators `M` with
//! `0 ⊑ M ⊑ I` — as its assertion language (Sec. 4), ordered by
//! `Θ ⊑_inf Ψ  ⇔  ∀ρ. inf_{M∈Θ} tr(Mρ) ≤ inf_{N∈Ψ} tr(Nρ)`.
//! [`Assertion`] is the finite, concrete realisation used by the verifier
//! (the tool restricts to finite assertions, Sec. 6.3).
//!
//! # Low-rank factored predicates
//!
//! Each element of the set is a [`Predicate`] — either a dense matrix or a
//! **factored** operator `M = V·V†` with `V` tall-skinny (`2ⁿ×r`,
//! `r ≪ 2ⁿ`). The invariants that matter in practice (Grover's target
//! projector, code spaces, RUS success projectors) are low-rank
//! projectors, and the wp transformer preserves the structure:
//! `U†(VV†)U = (U†V)(U†V)†`. The transformer methods on [`Assertion`]
//! ([`Assertion::wp_unitary`], [`Assertion::wp_init`],
//! [`Assertion::sandwich_local`], [`Assertion::sum_pairwise`]) keep
//! factors factored across Unit/Init/If/While sandwiches, turning the
//! remaining `O(8ⁿ)` dense conjugations on the hot path into `O(4ⁿ·r)`
//! GEMMs, and `⊑` comparisons between factored predicates reduce to an
//! `(r₁+r₂)`-dimensional Gram eigenproblem
//! ([`nqpv_solver::factored_lowner_le`]) ahead of any dense solve.

use nqpv_lang::AssertionExpr;
use nqpv_linalg::{
    apply_gate_columns, conjugate_gate, deposit_bits, embed, embed_factor, factor_recompress, gram,
    hconcat, low_rank_factor, CMat,
};
use nqpv_quantum::{OperatorLibrary, Register, SuperOp};
use nqpv_solver::{assertion_le, factored_lowner_le, LownerOptions, Verdict};
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::OnceLock;

use crate::error::VerifError;

/// Rank-detection tolerance applied when a user predicate is resolved
/// against a register (operator-file load path included): the factored
/// form must reproduce the dense operator entry-wise within this bound.
const RANK_DETECT_TOL: f64 = 1e-9;

/// A factored positive operator `M = V·V†` with `V` tall-skinny, plus a
/// lazily materialised dense form for the consumers that genuinely need a
/// whole-space matrix (outline rendering, solver fallbacks). The dense
/// cache is `Arc`-shared so those consumers can keep the matrix without
/// another `O(4ⁿ)` copy.
#[derive(Debug)]
pub struct Factor {
    v: CMat,
    dense: OnceLock<std::sync::Arc<CMat>>,
    canonical: OnceLock<CMat>,
}

impl Clone for Factor {
    fn clone(&self) -> Self {
        // The dense and canonical caches are intentionally dropped: clones
        // travel through the memo cache, and both forms are rebuilt
        // deterministically (hence bit-identically) on demand.
        Factor {
            v: self.v.clone(),
            dense: OnceLock::new(),
            canonical: OnceLock::new(),
        }
    }
}

impl Factor {
    fn new(v: CMat) -> Self {
        Factor {
            v,
            dense: OnceLock::new(),
            canonical: OnceLock::new(),
        }
    }

    /// The tall-skinny factor `V`.
    pub fn v(&self) -> &CMat {
        &self.v
    }

    /// The factor width (the represented operator's rank bound).
    pub fn rank(&self) -> usize {
        self.v.cols()
    }

    /// The dense operator `V·V†`, materialised once and cached.
    pub fn dense(&self) -> &CMat {
        self.dense_shared()
    }

    /// The canonical (eigenbasis-phase-fixed) factor of `V·V†`, computed
    /// once and cached: a function of the represented *operator*, not of
    /// this particular factoring, so quantised hashes of it give
    /// representation-independent verdict-cache keys (see
    /// [`crate::cache::verdict_key`]).
    pub fn canonical(&self) -> &CMat {
        self.canonical
            .get_or_init(|| nqpv_linalg::canonical_factor(&self.v))
    }

    fn dense_shared(&self) -> &std::sync::Arc<CMat> {
        self.dense
            .get_or_init(|| std::sync::Arc::new(self.v.mul(&self.v.adjoint())))
    }
}

/// One element of an assertion set: a quantum predicate held either as a
/// dense `2ⁿ×2ⁿ` matrix or in low-rank factored form (see the module
/// docs).
///
/// `Predicate` dereferences to the **dense** matrix, so read-only
/// consumers (tests, rendering, solver fallbacks) treat it as a `CMat`;
/// the deref lazily materialises and caches `V·V†` for factored
/// predicates — hot paths use the structure-aware methods instead.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// A dense predicate matrix.
    Dense(CMat),
    /// A factored predicate `V·V†`.
    Factored(Factor),
}

impl Predicate {
    /// Wraps a dense matrix.
    pub fn dense_from(m: CMat) -> Predicate {
        Predicate::Dense(m)
    }

    /// Wraps a factor, **densifying when the width defeats the purpose**:
    /// the factored representation only wins while `2·r ≤ dim`, so wider
    /// factors are materialised up front (`O(4ⁿ·r)`, cheaper than the
    /// dense transform they would otherwise cause downstream).
    pub fn from_factor(v: CMat) -> Predicate {
        if 2 * v.cols() <= v.rows() {
            Predicate::Factored(Factor::new(v))
        } else {
            Predicate::Dense(v.mul(&v.adjoint()))
        }
    }

    /// The space dimension.
    pub fn dim(&self) -> usize {
        match self {
            Predicate::Dense(m) => m.rows(),
            Predicate::Factored(f) => f.v.rows(),
        }
    }

    /// `true` for the factored representation.
    pub fn is_factored(&self) -> bool {
        matches!(self, Predicate::Factored(_))
    }

    /// The factor width for factored predicates (`None` when dense).
    pub fn rank(&self) -> Option<usize> {
        match self {
            Predicate::Dense(_) => None,
            Predicate::Factored(f) => Some(f.rank()),
        }
    }

    /// The dense matrix, lazily materialised for factored predicates.
    pub fn dense(&self) -> &CMat {
        match self {
            Predicate::Dense(m) => m,
            Predicate::Factored(f) => f.dense(),
        }
    }

    /// The dense matrix behind a shared handle: factored predicates hand
    /// out their cached materialisation without copying (an `O(4ⁿ)`
    /// memory pass saved per outline-rendered predicate); dense ones pay
    /// the one clone they would pay anyway.
    pub fn dense_shared(&self) -> std::sync::Arc<CMat> {
        match self {
            Predicate::Dense(m) => std::sync::Arc::new(m.clone()),
            Predicate::Factored(f) => f.dense_shared().clone(),
        }
    }

    /// `tr(M·ρ)` without materialising the operator when factored:
    /// `tr(VV†ρ) = tr(V†ρV) = Σⱼ ⟨vⱼ|ρ|vⱼ⟩` — `O(4ⁿ·r)` against the
    /// `O(4ⁿ·2ⁿ)` trace product of the dense form.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, rho: &CMat) -> f64 {
        match self {
            Predicate::Dense(m) => m.trace_product(rho).re,
            Predicate::Factored(f) => {
                let d = f.v.rows();
                assert_eq!(rho.rows(), d, "state dimension mismatch");
                let rv = rho.mul(&f.v);
                let mut acc = 0.0f64;
                for i in 0..d {
                    let vrow = f.v.row(i);
                    let rrow = rv.row(i);
                    for (a, b) in vrow.iter().zip(rrow) {
                        acc += (a.conj() * *b).re;
                    }
                }
                acc
            }
        }
    }

    /// `tr(M)` without materialising the operator when factored:
    /// `tr(VV†) = ‖V‖²_F`, an `O(2ⁿ·r)` pass over the factor.
    pub fn trace_re(&self) -> f64 {
        match self {
            Predicate::Dense(m) => m.trace_re(),
            Predicate::Factored(f) => {
                f.v.as_slice()
                    .iter()
                    .map(|z| z.re * z.re + z.im * z.im)
                    .sum()
            }
        }
    }

    /// Dedup fingerprint. Dense predicates hash the quantised matrix;
    /// factored ones hash the quantised **factor** (tagged apart), so
    /// byte-identical pipeline products dedupe without materialising
    /// `V·V†`. Factored/dense forms of the same operator therefore hash
    /// apart — dedup is best-effort, the set-size bound still governs.
    pub fn fingerprint(&self, scale: f64) -> u64 {
        match self {
            Predicate::Dense(m) => m.fingerprint(scale),
            Predicate::Factored(f) => f.v.fingerprint(scale) ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// `0 ⊑ M ⊑ I` within `tol`. Factored predicates are PSD by
    /// construction and `VV† ⊑ I ⇔ V†V ⊑ I`, an `r×r` eigenproblem.
    pub fn is_predicate(&self, tol: f64) -> bool {
        match self {
            Predicate::Dense(m) => nqpv_linalg::is_predicate(m, tol),
            Predicate::Factored(f) => {
                if f.rank() == 0 {
                    return true;
                }
                let g = gram(&f.v, &f.v);
                match nqpv_linalg::eigh(&g) {
                    Ok(e) => e.max() <= 1.0 + tol,
                    Err(_) => false,
                }
            }
        }
    }
}

impl Deref for Predicate {
    type Target = CMat;
    fn deref(&self) -> &CMat {
        self.dense()
    }
}

/// A finite set of quantum predicates over a fixed register space.
///
/// # Examples
///
/// ```
/// use nqpv_core::Assertion;
/// use nqpv_linalg::CMat;
/// let a = Assertion::identity(2);
/// assert_eq!(a.dim(), 2);
/// assert_eq!(a.ops().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Assertion {
    dim: usize,
    ops: Vec<Predicate>,
}

impl Assertion {
    /// Creates an assertion from explicit dense predicate matrices.
    ///
    /// # Errors
    ///
    /// Rejects empty sets and shape mismatches; elements are *not* checked
    /// for the predicate interval here (wlp-generated intermediates can
    /// carry rounding slack) — use [`Assertion::validate_predicates`] at
    /// user-input boundaries.
    pub fn from_ops(dim: usize, ops: Vec<CMat>) -> Result<Self, VerifError> {
        Assertion::from_predicates(dim, ops.into_iter().map(Predicate::Dense).collect())
    }

    /// Creates an assertion from explicit predicates (dense or factored).
    ///
    /// # Errors
    ///
    /// Rejects empty sets and shape mismatches, like
    /// [`Assertion::from_ops`].
    pub fn from_predicates(dim: usize, ops: Vec<Predicate>) -> Result<Self, VerifError> {
        if ops.is_empty() {
            return Err(VerifError::EmptyAssertion);
        }
        for p in &ops {
            let rows = match p {
                Predicate::Dense(m) if m.rows() != dim || m.cols() != dim => m.rows(),
                Predicate::Factored(f) if f.v.rows() != dim => f.v.rows(),
                _ => continue,
            };
            return Err(VerifError::AssertionShape {
                expected: dim,
                got: rows,
            });
        }
        Ok(Assertion { dim, ops }.deduped())
    }

    /// The singleton `{I}` — the quantum analogue of `true`.
    pub fn identity(dim: usize) -> Self {
        Assertion {
            dim,
            ops: vec![Predicate::Dense(CMat::identity(dim))],
        }
    }

    /// The singleton `{0}` — the quantum analogue of `false`.
    pub fn zero(dim: usize) -> Self {
        Assertion {
            dim,
            ops: vec![Predicate::Dense(CMat::zeros(dim, dim))],
        }
    }

    /// Resolves a syntactic assertion against a library and register:
    /// every `P[q̄]` term is embedded as a cylinder extension onto the full
    /// register space, with **rank detection** — predicates whose pivoted
    /// Cholesky factorisation reveals a payoff-worthy rank (`2r ≤ 2ᵏ`)
    /// enter the pipeline factored, with no syntax change for existing
    /// corpora.
    ///
    /// # Errors
    ///
    /// Returns [`VerifError`] on unknown operators, kind/arity mismatches
    /// or invalid predicates.
    pub fn from_expr(
        expr: &AssertionExpr,
        lib: &OperatorLibrary,
        reg: &Register,
    ) -> Result<Self, VerifError> {
        Assertion::from_expr_with(expr, lib, reg, true)
    }

    /// [`Assertion::from_expr`] with rank detection switchable off
    /// (`factor = false` forces the dense representation; the
    /// factored-vs-dense ablation knob behind
    /// [`VcOptions::factor_assertions`](crate::transformer::VcOptions)).
    ///
    /// # Errors
    ///
    /// Same as [`Assertion::from_expr`].
    pub fn from_expr_with(
        expr: &AssertionExpr,
        lib: &OperatorLibrary,
        reg: &Register,
        factor: bool,
    ) -> Result<Self, VerifError> {
        let n = reg.n_qubits();
        let mut ops = Vec::with_capacity(expr.terms.len());
        for term in &expr.terms {
            let m = lib.predicate(&term.op).map_err(VerifError::Library)?;
            let pos = reg.positions(&term.qubits).map_err(VerifError::Register)?;
            let k = m.rows().trailing_zeros() as usize;
            if k != pos.len() {
                return Err(VerifError::ArityMismatch {
                    op: term.op.clone(),
                    expected: k,
                    got: pos.len(),
                });
            }
            // Rank detection on the library operator at its native 2ᵏ
            // dimension: the embedded rank is r·2^{n-k}, so the factored
            // form pays off exactly when 2r ≤ 2ᵏ — passed down as the
            // rank budget so full-rank operators abort cheaply.
            let factored = if factor {
                low_rank_factor(&m, RANK_DETECT_TOL, m.rows() / 2)
            } else {
                None
            };
            ops.push(match factored {
                Some(w) => Predicate::Factored(Factor::new(embed_factor(&w, &pos, n))),
                None => Predicate::Dense(embed(&m, &pos, n)),
            });
        }
        Assertion::from_predicates(reg.dim(), ops)
    }

    /// The space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The predicate set.
    pub fn ops(&self) -> &[Predicate] {
        &self.ops
    }

    /// Number of predicates in the set.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the set is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Clones every predicate into its dense matrix form (solver
    /// fallbacks; factored elements materialise through their cache).
    pub fn dense_ops(&self) -> Vec<CMat> {
        self.ops.iter().map(|p| p.dense().clone()).collect()
    }

    /// Number of predicates held in factored form.
    pub fn factored_count(&self) -> usize {
        self.ops.iter().filter(|p| p.is_factored()).count()
    }

    /// The largest factor width among factored predicates (`None` when
    /// the set is all-dense) — the rank column of the benchmark tables.
    pub fn max_factored_rank(&self) -> Option<usize> {
        self.ops.iter().filter_map(Predicate::rank).max()
    }

    /// The guaranteed expected satisfaction `Exp(ρ ⊨ Θ) = inf_M tr(Mρ)`
    /// (Definition 4.1). Factored predicates evaluate as `tr(V†ρV)` —
    /// the dense operator is never materialised for the forward/semantics
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, rho: &CMat) -> f64 {
        assert_eq!(rho.rows(), self.dim, "state dimension mismatch");
        self.ops
            .iter()
            .map(|m| m.expectation(rho))
            .fold(f64::INFINITY, f64::min)
    }

    /// Element-wise map over the **dense** forms of the predicate set.
    /// Factored elements materialise first and the result is dense —
    /// use the structure-aware transforms ([`Assertion::wp_unitary`],
    /// [`Assertion::wp_init`], [`Assertion::sandwich_local`]) on the wp
    /// hot path.
    pub fn map<F: FnMut(&CMat) -> CMat>(&self, mut f: F) -> Assertion {
        Assertion {
            dim: self.dim,
            ops: self
                .ops
                .iter()
                .map(|m| Predicate::Dense(f(m.dense())))
                .collect(),
        }
        .deduped()
    }

    /// The (Unit) rule transform `{U† M U}` for a `k`-local unitary on
    /// `positions`: dense predicates run the strided conjugation,
    /// factored ones map their factor through one gate sweep
    /// (`U_S†·V` — rank and width unchanged, no recompression needed).
    pub fn wp_unitary(&self, u: &CMat, positions: &[usize], n: usize) -> Assertion {
        let ua = u.adjoint();
        Assertion {
            dim: self.dim,
            ops: self
                .ops
                .iter()
                .map(|p| match p {
                    Predicate::Dense(m) => {
                        Predicate::Dense(nqpv_linalg::adjoint_conjugate_gate(u, positions, n, m))
                    }
                    Predicate::Factored(f) => {
                        let mut v = f.v.clone();
                        apply_gate_columns(&ua, positions, n, &mut v);
                        Predicate::Factored(Factor::new(v))
                    }
                })
                .collect(),
        }
        .deduped()
    }

    /// The measurement sandwich `{P M P}` for a hermitian `k`-local
    /// projector `p` on `positions` (rules (Meas)/(While)): dense
    /// predicates run the strided conjugation; factored ones apply `P` to
    /// the factor columns (`P(VV†)P = (PV)(PV)†`) and re-truncate — a
    /// projector can only shrink the rank.
    pub fn sandwich_local(&self, p: &CMat, positions: &[usize], n: usize) -> Assertion {
        Assertion {
            dim: self.dim,
            ops: self
                .ops
                .iter()
                .map(|pred| match pred {
                    Predicate::Dense(m) => Predicate::Dense(conjugate_gate(p, positions, n, m)),
                    Predicate::Factored(f) => {
                        let mut v = f.v.clone();
                        apply_gate_columns(p, positions, n, &mut v);
                        Predicate::Factored(Factor::new(factor_recompress(&v)))
                    }
                })
                .collect(),
        }
        .deduped()
    }

    /// The (Init) rule transform `xp.(q̄:=0).M = Σᵢ |i⟩⟨0| M |0⟩⟨i|` for
    /// initialised `positions`. Dense predicates go through the strided
    /// initialiser super-operator as before. Factored predicates exploit
    /// the structure `E†(M) = I_pos ⊗ ⟨0|M|0⟩`: gather the `pos = 0` rows
    /// of the factor, re-truncate that `2^{n-k}×r` block (this is where
    /// rank *grows* by the `2ᵏ` branch factor, and where recompression
    /// claws it back), and re-embed — never touching the `2ᵏ` Kraus
    /// branches individually.
    pub fn wp_init(&self, positions: &[usize], n: usize) -> Assertion {
        let k = positions.len();
        let rest: Vec<usize> = (0..n).filter(|q| !positions.contains(q)).collect();
        let setter = OnceLock::new(); // built only if a dense element needs it
        Assertion {
            dim: self.dim,
            ops: self
                .ops
                .iter()
                .map(|pred| match pred {
                    Predicate::Dense(m) => {
                        let e: &SuperOp =
                            setter.get_or_init(|| SuperOp::initializer(k).embed(positions, n));
                        Predicate::Dense(e.apply_heisenberg(m))
                    }
                    Predicate::Factored(f) => {
                        // V₀ = the rows of V whose `positions` bits are 0,
                        // ordered by the remaining qubits.
                        let r = f.v.cols();
                        let v0 = CMat::from_fn(1usize << rest.len(), r, |a, j| {
                            f.v[(deposit_bits(a, &rest, n), j)]
                        });
                        let w = factor_recompress(&v0);
                        let width = w.cols() << k;
                        if 2 * width <= self.dim {
                            Predicate::Factored(Factor::new(embed_factor(&w, &rest, n)))
                        } else {
                            // Full-ish rank after the 2ᵏ branch blow-up:
                            // build the small rest-space block densely and
                            // embed once (O(4ⁿ) — e.g. Grover's wp lands
                            // on ⟨0|M|0⟩·I here).
                            Predicate::Dense(embed(&w.mul(&w.adjoint()), &rest, n))
                        }
                    }
                })
                .collect(),
        }
        .deduped()
    }

    /// Set union `Θ ∪ Ψ` (rule (Union) / nondeterministic choice in Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`VerifError::AssertionShape`] on dimension mismatch.
    pub fn union(&self, other: &Assertion) -> Result<Assertion, VerifError> {
        if self.dim != other.dim {
            return Err(VerifError::AssertionShape {
                expected: self.dim,
                got: other.dim,
            });
        }
        let mut ops = self.ops.clone();
        ops.extend(other.ops.iter().cloned());
        Ok(Assertion { dim: self.dim, ops }.deduped())
    }

    /// Element-wise (cartesian) sums `{A + B : A ∈ Θ, B ∈ Ψ}` — the
    /// measurement-combination of rule (Meas) and the `P⁰(Ψ)+P¹(Θ)`
    /// construction of rule (While). Factored pairs concatenate their
    /// factors and re-truncate (densifying only past the payoff
    /// threshold); mixed pairs fall back to the dense sum.
    ///
    /// # Errors
    ///
    /// Returns [`VerifError::AssertionShape`] on dimension mismatch.
    pub fn sum_pairwise(&self, other: &Assertion) -> Result<Assertion, VerifError> {
        if self.dim != other.dim {
            return Err(VerifError::AssertionShape {
                expected: self.dim,
                got: other.dim,
            });
        }
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for a in &self.ops {
            for b in &other.ops {
                ops.push(match (a, b) {
                    (Predicate::Factored(fa), Predicate::Factored(fb)) => {
                        Predicate::from_factor(factor_recompress(&hconcat(&fa.v, &fb.v)))
                    }
                    _ => Predicate::Dense(a.dense().add_mat(b.dense())),
                });
            }
        }
        Ok(Assertion { dim: self.dim, ops }.deduped())
    }

    /// Decides `self ⊑_inf other` with the solver. Pairs of factored
    /// predicates try the `(r₁+r₂)`-dimensional Gram fast path first: if
    /// every `N ∈ Ψ` is dominated by some factored `M ∈ Θ`, the order is
    /// certified without materialising a single dense operator; otherwise
    /// the dense minimax solver decides as before.
    ///
    /// # Errors
    ///
    /// Wraps solver input failures.
    pub fn le_inf(&self, other: &Assertion, opts: LownerOptions) -> Result<Verdict, VerifError> {
        if self.fast_le_inf_holds_traced(other, opts) {
            return Ok(Verdict::Holds);
        }
        assertion_le(&self.dense_ops(), &other.dense_ops(), opts).map_err(VerifError::Solver)
    }

    /// [`Assertion::fast_le_inf_holds`] under a solver span: a certified
    /// factored screen is a solver obligation settled on the
    /// `factored-gram` path (the dense solver records its own spans per
    /// element, so an undecided screen records nothing here).
    fn fast_le_inf_holds_traced(&self, other: &Assertion, opts: LownerOptions) -> bool {
        let mut span = opts
            .tracer
            .span(nqpv_telemetry::Phase::Solver, "obligation");
        let holds = self.fast_le_inf_holds(other, opts.eps);
        if holds {
            span.classify("solver_path", "factored-gram");
            span.arg("outcome", nqpv_telemetry::ArgValue::Static("holds"));
        } else {
            // Undecided: the dense solver will record the real spans.
            span.cancel();
        }
        holds
    }

    /// Rank-aware certifying-side screen for `⊑_inf`: `true` when every
    /// element of `other` is Löwner-dominated by some **factored** element
    /// of `self`, each pair decided by the Gram eigenproblem. `false`
    /// means "undecided", never "violated". Mismatched dimensions are
    /// left undecided so the solver path reports them as errors, as the
    /// API documents.
    fn fast_le_inf_holds(&self, other: &Assertion, eps: f64) -> bool {
        if self.dim != other.dim {
            return false;
        }
        other.ops.iter().all(|n| {
            self.ops.iter().any(|m| match (m, n) {
                (Predicate::Factored(fm), Predicate::Factored(fnn)) => {
                    factored_lowner_le(&fm.v, &fnn.v, eps)
                }
                _ => false,
            })
        })
    }

    /// Rank-aware certifying-side screen for the angelic `⊑_sup` (used by
    /// [`crate::angelic::le_sup`]): `true` when every factored element of
    /// `self` is dominated by some factored element of `other`.
    pub(crate) fn fast_le_sup_holds(&self, other: &Assertion, eps: f64) -> bool {
        if self.dim != other.dim {
            return false;
        }
        self.ops.iter().all(|m| {
            other.ops.iter().any(|n| match (m, n) {
                (Predicate::Factored(fm), Predicate::Factored(fnn)) => {
                    factored_lowner_le(&fm.v, &fnn.v, eps)
                }
                _ => false,
            })
        })
    }

    /// [`Assertion::le_inf`] through an optional **verdict cache**: the
    /// decision is keyed by the exact operator bits of both sides plus the
    /// solver options, and looked up via the
    /// [`TransformerCache`](crate::cache::TransformerCache) hook before the
    /// solver runs. Loop-heavy corpora repeat the same `⊑_inf` queries many
    /// times (invariant checks, cut assertions, final comparisons of
    /// byte-identical jobs); a shared cache answers all but the first.
    ///
    /// # Errors
    ///
    /// Same as [`Assertion::le_inf`]. Solver errors are never cached.
    pub fn le_inf_cached(
        &self,
        other: &Assertion,
        opts: LownerOptions,
        cache: Option<&dyn crate::cache::TransformerCache>,
    ) -> Result<Verdict, VerifError> {
        let Some(cache) = cache else {
            return self.le_inf(other, opts);
        };
        let key = crate::cache::verdict_key(crate::cache::VERDICT_TAG_INF, self, other, &opts);
        let hit = {
            let mut span = opts
                .tracer
                .span(nqpv_telemetry::Phase::Cache, "verdict_tier");
            let hit = cache.get_verdict(key);
            span.classify("verdict_tier", if hit.is_some() { "hit" } else { "miss" });
            hit
        };
        if let Some(v) = hit {
            return Ok(v);
        }
        let v = self.le_inf(other, opts)?;
        cache.put_verdict(key, &v);
        Ok(v)
    }

    /// Validates that every element lies in the predicate interval
    /// `0 ⊑ M ⊑ I` (within `tol`). Factored elements decide `VV† ⊑ I`
    /// as the `r×r` Gram eigenproblem `V†V ⊑ I`.
    pub fn validate_predicates(&self, tol: f64) -> bool {
        self.ops.iter().all(|m| m.is_predicate(tol))
    }

    /// `true` if the two assertions contain the same predicates (as
    /// matrices, within `tol`), regardless of order. Used by the proof
    /// checker to match rule premises *syntactically* — semantic weakening
    /// must go through the (Imp) rule, as in the paper.
    pub fn approx_set_eq(&self, other: &Assertion, tol: f64) -> bool {
        if self.dim != other.dim || self.ops.len() != other.ops.len() {
            return false;
        }
        let mut used = vec![false; other.ops.len()];
        'outer: for a in &self.ops {
            for (j, b) in other.ops.iter().enumerate() {
                if !used[j] && a.dense().approx_eq(b.dense(), tol) {
                    used[j] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }

    /// Caps the set size, returning an error if exceeded (nondeterministic
    /// branching multiplies set sizes; see `VcOptions::max_set`).
    pub(crate) fn check_size(self, max: usize) -> Result<Self, VerifError> {
        if self.ops.len() > max {
            Err(VerifError::SetBlowup { limit: max })
        } else {
            Ok(self)
        }
    }

    fn deduped(mut self) -> Self {
        if self.ops.len() <= 1 {
            return self;
        }
        let mut seen = HashSet::new();
        self.ops.retain(|m| seen.insert(m.fingerprint(1e8)));
        self
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{ {} predicate(s) on dim {} }}",
            self.ops.len(),
            self.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::OpApp;
    use nqpv_quantum::ket;

    fn reg2() -> Register {
        Register::new(&["q1", "q2"]).unwrap()
    }

    #[test]
    fn from_expr_embeds_onto_register() {
        let lib = OperatorLibrary::with_builtins();
        let expr = AssertionExpr::new(vec![OpApp::new("P0", &["q2"])]);
        let a = Assertion::from_expr(&expr, &lib, &reg2()).unwrap();
        assert_eq!(a.dim(), 4);
        // P0 on q2 = I ⊗ |0⟩⟨0|: expectation 1 on |10⟩, 0 on |11⟩.
        assert!((a.expectation(&ket("10").projector()) - 1.0).abs() < 1e-10);
        assert!(a.expectation(&ket("11").projector()).abs() < 1e-10);
    }

    #[test]
    fn from_expr_detects_low_rank_projectors() {
        let lib = OperatorLibrary::with_builtins();
        // P0 is rank 1 of dimension 2: factored (embedded rank 2 = dim/2).
        let a = Assertion::from_expr(
            &AssertionExpr::new(vec![OpApp::new("P0", &["q2"])]),
            &lib,
            &reg2(),
        )
        .unwrap();
        assert_eq!(a.factored_count(), 1);
        assert_eq!(a.max_factored_rank(), Some(2));
        assert!(a.ops()[0]
            .dense()
            .approx_eq(&embed(&ket("0").projector(), &[1], 2), 1e-12));
        // I is full rank: dense.
        let id = Assertion::from_expr(
            &AssertionExpr::new(vec![OpApp::new("I", &["q1"])]),
            &lib,
            &reg2(),
        )
        .unwrap();
        assert_eq!(id.factored_count(), 0);
        // The ablation switch forces dense.
        let dense = Assertion::from_expr_with(
            &AssertionExpr::new(vec![OpApp::new("P0", &["q2"])]),
            &lib,
            &reg2(),
            false,
        )
        .unwrap();
        assert_eq!(dense.factored_count(), 0);
        assert!(dense.ops()[0].dense().approx_eq(a.ops()[0].dense(), 1e-12));
    }

    #[test]
    fn expectation_takes_the_infimum() {
        let lib = OperatorLibrary::with_builtins();
        let expr = AssertionExpr::new(vec![OpApp::new("P0", &["q1"]), OpApp::new("P1", &["q1"])]);
        let a = Assertion::from_expr(&expr, &lib, &reg2()).unwrap();
        // On any state, min(tr(P0ρ), tr(P1ρ)) ≤ 1/2·tr(ρ).
        let rho = ket("0+").projector();
        assert!(a.expectation(&rho) < 1e-10 + 0.0f64.max(0.0)); // P1 gives 0
    }

    #[test]
    fn factored_expectation_matches_dense() {
        let v = CMat::from_fn(4, 2, |i, j| {
            nqpv_linalg::c((i + j) as f64 * 0.2, i as f64 * 0.1 - j as f64 * 0.3)
        });
        let factored = Predicate::Factored(Factor::new(v.clone()));
        let dense = Predicate::Dense(v.mul(&v.adjoint()));
        let rho = ket("0+").projector();
        assert!((factored.expectation(&rho) - dense.expectation(&rho)).abs() < 1e-10);
    }

    #[test]
    fn union_and_sum_shapes() {
        let a = Assertion::identity(2);
        let b = Assertion::zero(2);
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        let s = a.sum_pairwise(&b).unwrap();
        assert_eq!(s.len(), 1); // I + 0 = I
        let bad = Assertion::identity(4);
        assert!(a.union(&bad).is_err());
    }

    #[test]
    fn factored_sum_pairwise_concatenates_and_recompresses() {
        let p0 = Predicate::from_factor(CMat::from_real(4, 1, &[1.0, 0.0, 0.0, 0.0]));
        let p1 = Predicate::from_factor(CMat::from_real(4, 1, &[0.0, 1.0, 0.0, 0.0]));
        let a = Assertion::from_predicates(4, vec![p0.clone()]).unwrap();
        let b = Assertion::from_predicates(4, vec![p1]).unwrap();
        let s = a.sum_pairwise(&b).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.max_factored_rank(), Some(2));
        // Summing a factor with itself re-truncates back to rank 1.
        let twice = a
            .sum_pairwise(&Assertion::from_predicates(4, vec![p0]).unwrap())
            .unwrap();
        assert_eq!(twice.max_factored_rank(), Some(1));
        assert!((twice.expectation(&ket("00").projector()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wp_unitary_keeps_factors_factored() {
        // post = |11⟩⟨11| factored; wp through H⊗H must stay rank 1 and
        // agree with the dense conjugation.
        let marked = Predicate::from_factor(CMat::from_real(4, 1, &[0.0, 0.0, 0.0, 1.0]));
        let a = Assertion::from_predicates(4, vec![marked]).unwrap();
        let h = nqpv_quantum::gates::h();
        let hh = h.kron(&h);
        let wp = a.wp_unitary(&hh, &[0, 1], 2);
        assert_eq!(wp.max_factored_rank(), Some(1));
        let dense_ref = hh.adjoint_conjugate(&ket("11").projector());
        assert!(wp.ops()[0].dense().approx_eq(&dense_ref, 1e-10));
    }

    #[test]
    fn wp_init_full_width_lands_on_scaled_identity() {
        // xp.(q̄:=0).[|ψ⟩] = |⟨0…0|ψ⟩|²·I — rank explodes, so the factored
        // element must densify into the scaled identity.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let psi = CMat::from_real(4, 1, &[s, 0.0, 0.0, s]);
        let a = Assertion::from_predicates(4, vec![Predicate::from_factor(psi)]).unwrap();
        let wp = a.wp_init(&[0, 1], 2);
        assert_eq!(wp.factored_count(), 0);
        assert!(wp.ops()[0]
            .dense()
            .approx_eq(&CMat::identity(4).scale_re(0.5), 1e-10));
    }

    #[test]
    fn wp_init_partial_width_stays_factored_when_thin() {
        // Init on q1 of 3 qubits with post [|000⟩]: wp = I_{q1} ⊗ ⟨0|M|0⟩
        // = [|00⟩⟨00|]_{q0,q2} ⊗ I_{q1}: rank 2 of dim 8 — stays factored.
        let a = Assertion::from_predicates(
            8,
            vec![Predicate::from_factor(CMat::from_fn(8, 1, |i, _| {
                if i == 0 {
                    nqpv_linalg::cr(1.0)
                } else {
                    nqpv_linalg::Complex::ZERO
                }
            }))],
        )
        .unwrap();
        let wp = a.wp_init(&[1], 3);
        assert_eq!(wp.max_factored_rank(), Some(2));
        // Dense reference through the initialiser super-operator.
        let setter = SuperOp::initializer(1).embed(&[1], 3);
        let dense_ref = setter.apply_heisenberg(&ket("000").projector());
        assert!(wp.ops()[0].dense().approx_eq(&dense_ref, 1e-10));
    }

    #[test]
    fn sandwich_local_matches_dense_and_drops_rank() {
        // P0 on qubit 0 sandwiching [|+⟩⊗|0⟩] + [|1⟩⊗|1⟩] (rank 2): the
        // second column is annihilated, rank drops to 1.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let v = CMat::from_real(4, 2, &[s, 0.0, 0.0, 0.0, s, 0.0, 0.0, 1.0]);
        let a = Assertion::from_predicates(4, vec![Predicate::from_factor(v.clone())]).unwrap();
        let p0 = ket("0").projector();
        let out = a.sandwich_local(&p0, &[0], 2);
        assert_eq!(out.max_factored_rank(), Some(1));
        let dense_ref = conjugate_gate(&p0, &[0], 2, &v.mul(&v.adjoint()));
        assert!(out.ops()[0].dense().approx_eq(&dense_ref, 1e-9));
    }

    #[test]
    fn dedupe_collapses_equal_predicates() {
        let i = CMat::identity(2);
        let a = Assertion::from_ops(2, vec![i.clone(), i.clone(), i]).unwrap();
        assert_eq!(a.len(), 1);
        // Identical factors dedupe without materialising.
        let v = CMat::from_real(4, 1, &[0.0, 1.0, 0.0, 0.0]);
        let f = Assertion::from_predicates(
            4,
            vec![
                Predicate::from_factor(v.clone()),
                Predicate::from_factor(v.clone()),
                Predicate::from_factor(v),
            ],
        )
        .unwrap();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn le_inf_basic_directions() {
        let half = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(0.5)]).unwrap();
        let one = Assertion::identity(2);
        assert!(half.le_inf(&one, LownerOptions::default()).unwrap().holds());
        assert!(!one.le_inf(&half, LownerOptions::default()).unwrap().holds());
        // {0} ⊑_inf anything.
        let zero = Assertion::zero(2);
        assert!(zero
            .le_inf(&half, LownerOptions::default())
            .unwrap()
            .holds());
    }

    #[test]
    fn le_inf_dimension_mismatch_is_an_error_not_a_panic() {
        // The factored fast path must leave mismatched dimensions to the
        // solver, which reports them as ShapeMismatch errors.
        let a = Assertion::from_predicates(
            4,
            vec![Predicate::from_factor(CMat::from_real(
                4,
                1,
                &[1.0, 0.0, 0.0, 0.0],
            ))],
        )
        .unwrap();
        let b = Assertion::from_predicates(
            8,
            vec![Predicate::from_factor(CMat::from_real(
                8,
                1,
                &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            ))],
        )
        .unwrap();
        assert!(a.le_inf(&b, LownerOptions::default()).is_err());
        assert!(crate::angelic::le_sup(&a, &b, LownerOptions::default()).is_err());
    }

    #[test]
    fn le_inf_factored_fast_path_agrees_with_dense() {
        let v1 = CMat::from_real(4, 1, &[0.0, 0.0, 0.0, 1.0]);
        let v2 = CMat::from_real(4, 2, &[0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        let small =
            Assertion::from_predicates(4, vec![Predicate::from_factor(v1.clone())]).unwrap();
        let big = Assertion::from_predicates(4, vec![Predicate::from_factor(v2.clone())]).unwrap();
        // [|11⟩] ⊑ [|10⟩]+[|11⟩] holds, settled by the Gram fast path.
        assert!(small
            .le_inf(&big, LownerOptions::default())
            .unwrap()
            .holds());
        // The converse is violated — the fast path must *not* certify it,
        // and the dense fallback must report the violation.
        let v = big.le_inf(&small, LownerOptions::default()).unwrap();
        assert!(!v.holds());
        // Same verdicts as the all-dense encodings.
        let small_d = Assertion::from_ops(4, vec![v1.mul(&v1.adjoint())]).unwrap();
        let big_d = Assertion::from_ops(4, vec![v2.mul(&v2.adjoint())]).unwrap();
        assert_eq!(
            small
                .le_inf(&big, LownerOptions::default())
                .unwrap()
                .holds(),
            small_d
                .le_inf(&big_d, LownerOptions::default())
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn arity_and_kind_errors() {
        let lib = OperatorLibrary::with_builtins();
        let bad_arity = AssertionExpr::new(vec![OpApp::new("P0", &["q1", "q2"])]);
        assert!(matches!(
            Assertion::from_expr(&bad_arity, &lib, &reg2()),
            Err(VerifError::ArityMismatch { .. })
        ));
        let not_pred = AssertionExpr::new(vec![OpApp::new("X", &["q1"])]);
        assert!(matches!(
            Assertion::from_expr(&not_pred, &lib, &reg2()),
            Err(VerifError::Library(_))
        ));
        let unknown_q = AssertionExpr::new(vec![OpApp::new("P0", &["zz"])]);
        assert!(matches!(
            Assertion::from_expr(&unknown_q, &lib, &reg2()),
            Err(VerifError::Register(_))
        ));
    }

    #[test]
    fn validate_predicates_flags_out_of_interval() {
        let ok = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(0.3)]).unwrap();
        assert!(ok.validate_predicates(1e-8));
        let bad = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(1.7)]).unwrap();
        assert!(!bad.validate_predicates(1e-8));
        // Factored validation is the r×r Gram test.
        let good_f = Assertion::from_predicates(
            4,
            vec![Predicate::from_factor(CMat::from_real(
                4,
                1,
                &[0.0, 1.0, 0.0, 0.0],
            ))],
        )
        .unwrap();
        assert!(good_f.validate_predicates(1e-8));
        let big_f = Assertion::from_predicates(
            4,
            vec![Predicate::from_factor(CMat::from_real(
                4,
                1,
                &[0.0, 1.3, 0.0, 0.0],
            ))],
        )
        .unwrap();
        assert!(!big_f.validate_predicates(1e-8));
    }

    #[test]
    fn from_factor_densifies_past_the_payoff_threshold() {
        // Width 2 at dimension 2: 2·2 > 2, must densify.
        let wide = Predicate::from_factor(CMat::from_real(2, 2, &[1.0, 0.0, 0.0, 1.0]));
        assert!(!wide.is_factored());
        // Width 1 at dimension 2: stays factored.
        let thin = Predicate::from_factor(CMat::from_real(2, 1, &[1.0, 0.0]));
        assert!(thin.is_factored());
    }
}
