//! Memoisation hook for the backward weakest-precondition transformer.
//!
//! Corpus-level drivers (the `nqpv-engine` batch engine) repeatedly verify
//! programs that share subterms — the same Grover iteration, the same QEC
//! syndrome block, byte-identical files. The backward pass is compositional
//! (`wlp.(S1;S2).Ψ = wlp.S1.(wlp.S2.Ψ)`), so the annotated result of any
//! subterm is fully determined by
//!
//! * the subterm's structure with every operator name resolved to its
//!   concrete matrix,
//! * the postcondition assertion it is pushed through,
//! * the register layout, and
//! * the verification options (mode, set bound, solver tolerances).
//!
//! [`TransformerCache`] abstracts a content-addressed store over exactly
//! that key. `nqpv-core` stays dependency-free: it only *consults* a cache
//! handed in by the caller (see [`crate::backward_with_cache`]); the
//! concurrent implementation with hit/miss accounting lives in
//! `nqpv-engine`.
//!
//! Correctness note: results for subterms containing `while` are only
//! cached in partial-correctness mode — in total mode loop verification
//! additionally depends on externally supplied ranking certificates keyed
//! by loop id, which are not part of the cache key.

use crate::transformer::Annotated;
use nqpv_solver::{LownerOptions, Verdict};
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Content hash identifying a `(subterm, postcondition, context)` triple.
///
/// 128 bits assembled from two independently seeded 64-bit hashers, so
/// accidental collisions across a corpus run are negligible.
pub type CacheKey = u128;

/// A memo store for annotated backward-pass results.
///
/// Implementations must be thread-safe: the batch engine shares one cache
/// across its whole worker pool. `get` returning a clone (rather than a
/// reference) keeps the trait object-safe and lock scopes small.
pub trait TransformerCache: Send + Sync {
    /// Looks up the annotated result for `key`, cloning on hit.
    fn get(&self, key: CacheKey) -> Option<Annotated>;

    /// Stores the annotated result computed for `key`.
    fn put(&self, key: CacheKey, value: &Annotated);

    /// Looks up a memoised `⊑_inf`/`⊑_sup` solver verdict for `key` — the
    /// second cache tier. Keys are content hashes of `(Θ, Ψ, ε/options)`
    /// (see [`verdict_key`]), so verdicts are shared across programs,
    /// registers and batch jobs whenever the same operator sets recur.
    /// The default implementation caches nothing.
    fn get_verdict(&self, _key: CacheKey) -> Option<Verdict> {
        None
    }

    /// Stores a solver verdict for `key`. The default implementation
    /// drops it.
    fn put_verdict(&self, _key: CacheKey, _verdict: &Verdict) {}
}

/// Content key of a `⊑_inf`/`⊑_sup` query: the exact operator bits of both
/// assertion sides plus every solver option that can influence the verdict.
/// Order within each side matters (the solver reports witness indices), so
/// the sides are hashed in sequence. Factored predicates hash their factor
/// bits (tagged apart from dense matrices) — the dense operator is never
/// materialised to build a key.
pub fn verdict_key(
    tag: u8,
    theta: &crate::assertion::Assertion,
    psi: &crate::assertion::Assertion,
    opts: &LownerOptions,
) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_u8(tag);
    // Every LownerOptions field influences the verdict; the Debug rendering
    // covers them all (f64 Debug is shortest-roundtrip, so distinct values
    // always render apart).
    h.write_str(&format!("{opts:?}"));
    h.write_usize(theta.len());
    for m in theta.ops() {
        h.write_predicate(m);
    }
    h.write_usize(psi.len());
    for m in psi.ops() {
        h.write_predicate(m);
    }
    h.finish()
}

/// Tag byte for `⊑_inf` verdict keys.
pub const VERDICT_TAG_INF: u8 = 0x1F;
/// Tag byte for `⊑_sup` verdict keys.
pub const VERDICT_TAG_SUP: u8 = 0x2F;

/// Double-width streaming hasher used to build [`CacheKey`]s.
///
/// Feeds every byte into two `DefaultHasher`s initialised with different
/// prefixes; `finish` concatenates their outputs. Deterministic within a
/// process, which is all an in-memory memo cache needs.
pub(crate) struct KeyHasher {
    a: DefaultHasher,
    b: DefaultHasher,
}

impl KeyHasher {
    pub(crate) fn new() -> Self {
        let mut a = DefaultHasher::new();
        let mut b = DefaultHasher::new();
        a.write_u8(0xA5);
        b.write_u8(0x5A);
        KeyHasher { a, b }
    }

    pub(crate) fn write_u8(&mut self, v: u8) {
        self.a.write_u8(v);
        self.b.write_u8(v);
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.a.write_u64(v);
        self.b.write_u64(v);
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.a.write(s.as_bytes());
        self.b.write(s.as_bytes());
    }

    /// Exact-bits hash of a float (canonicalising `-0.0` to `0.0`).
    pub(crate) fn write_f64(&mut self, x: f64) {
        self.write_u64((x + 0.0).to_bits());
    }

    /// Exact-bits hash of a complex matrix, dimensions included.
    pub(crate) fn write_matrix(&mut self, m: &nqpv_linalg::CMat) {
        self.write_usize(m.rows());
        self.write_usize(m.cols());
        for z in m.as_slice() {
            self.write_f64(z.re);
            self.write_f64(z.im);
        }
    }

    /// Exact-bits hash of a predicate: dense matrices and factored forms
    /// hash their own representation (under distinct tags), so no dense
    /// materialisation happens on the key path. Different factorings of
    /// the same operator hash apart — that only costs cache hits, never
    /// correctness, and the pipeline is deterministic so byte-identical
    /// jobs reproduce byte-identical factors.
    pub(crate) fn write_predicate(&mut self, p: &crate::assertion::Predicate) {
        match p {
            crate::assertion::Predicate::Dense(m) => {
                self.write_u8(0xD0);
                self.write_matrix(m);
            }
            crate::assertion::Predicate::Factored(f) => {
                self.write_u8(0xF0);
                self.write_matrix(f.v());
            }
        }
    }

    pub(crate) fn finish(&self) -> CacheKey {
        ((self.a.finish() as u128) << 64) | self.b.finish() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_linalg::CMat;

    #[test]
    fn keys_separate_streams_and_are_deterministic() {
        let mut h1 = KeyHasher::new();
        h1.write_str("abc");
        let mut h2 = KeyHasher::new();
        h2.write_str("abc");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = KeyHasher::new();
        h3.write_str("abd");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn matrix_hash_is_exact_not_quantised() {
        let a = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let mut b = a.clone();
        b[(0, 0)] = nqpv_linalg::c(1.0 + 1e-15, 0.0);
        let mut ha = KeyHasher::new();
        ha.write_matrix(&a);
        let mut hb = KeyHasher::new();
        hb.write_matrix(&b);
        assert_ne!(ha.finish(), hb.finish(), "distinct bits must hash apart");
        // -0.0 and 0.0 canonicalise together.
        let mut c1 = a.clone();
        c1[(0, 1)] = nqpv_linalg::c(-0.0, 0.0);
        let mut hc = KeyHasher::new();
        hc.write_matrix(&c1);
        let mut hd = KeyHasher::new();
        hd.write_matrix(&a);
        assert_eq!(hc.finish(), hd.finish());
    }
}
