//! Memoisation hook for the backward weakest-precondition transformer.
//!
//! Corpus-level drivers (the `nqpv-engine` batch engine) repeatedly verify
//! programs that share subterms — the same Grover iteration, the same QEC
//! syndrome block, byte-identical files. The backward pass is compositional
//! (`wlp.(S1;S2).Ψ = wlp.S1.(wlp.S2.Ψ)`), so the annotated result of any
//! subterm is fully determined by
//!
//! * the subterm's structure with every operator name resolved to its
//!   concrete matrix,
//! * the postcondition assertion it is pushed through,
//! * the register layout, and
//! * the verification options (mode, set bound, solver tolerances).
//!
//! [`TransformerCache`] abstracts a content-addressed store over exactly
//! that key. `nqpv-core` stays dependency-free: it only *consults* a cache
//! handed in by the caller (see [`crate::backward_with_cache`]); the
//! concurrent implementation with hit/miss accounting lives in
//! `nqpv-engine`.
//!
//! Correctness note: results for subterms containing `while` are only
//! cached in partial-correctness mode — in total mode loop verification
//! additionally depends on externally supplied ranking certificates keyed
//! by loop id, which are not part of the cache key.

use crate::transformer::Annotated;
use nqpv_solver::{LownerOptions, Verdict, Violation};
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// Content hash identifying a `(subterm, postcondition, context)` triple.
///
/// 128 bits assembled from two independently seeded 64-bit hashers, so
/// accidental collisions across a corpus run are negligible.
pub type CacheKey = u128;

/// A memo store for annotated backward-pass results.
///
/// Implementations must be thread-safe: the batch engine shares one cache
/// across its whole worker pool. `get` returning a clone (rather than a
/// reference) keeps the trait object-safe and lock scopes small.
pub trait TransformerCache: Send + Sync {
    /// Looks up the annotated result for `key`, cloning on hit.
    fn get(&self, key: CacheKey) -> Option<Annotated>;

    /// Stores the annotated result computed for `key`.
    fn put(&self, key: CacheKey, value: &Annotated);

    /// Looks up a memoised `⊑_inf`/`⊑_sup` solver verdict for `key` — the
    /// second cache tier. Keys are content hashes of `(Θ, Ψ, ε/options)`
    /// (see [`verdict_key`]), so verdicts are shared across programs,
    /// registers and batch jobs whenever the same operator sets recur.
    /// The default implementation caches nothing.
    fn get_verdict(&self, _key: CacheKey) -> Option<Verdict> {
        None
    }

    /// Stores a solver verdict for `key`. The default implementation
    /// drops it.
    fn put_verdict(&self, _key: CacheKey, _verdict: &Verdict) {}
}

/// Content key of a `⊑_inf`/`⊑_sup` query: the operator content of both
/// assertion sides plus every solver option that can influence the verdict.
/// Order within each side matters (the solver reports witness indices), so
/// the sides are hashed in sequence.
///
/// Dense predicates hash their exact bits. Factored predicates hash the
/// **quantised canonical factor** ([`crate::assertion::Factor::canonical`],
/// rounded at [`VERDICT_KEY_QUANT`]): different factorings of the same
/// operator — e.g. the same invariant reached through different transform
/// orders, or loaded in different jobs — produce the same key, so the
/// verdict tier (and its on-disk backend) is representation-independent.
/// The dense operator is never materialised to build a key. Quantisation
/// can only conflate operators equal to ~10⁻⁹ entry-wise, three orders
/// below the default solver precision, where the verdicts coincide anyway.
pub fn verdict_key(
    tag: u8,
    theta: &crate::assertion::Assertion,
    psi: &crate::assertion::Assertion,
    opts: &LownerOptions,
) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_u8(tag);
    // Every LownerOptions field influences the verdict; the Debug rendering
    // covers them all (f64 Debug is shortest-roundtrip, so distinct values
    // always render apart).
    h.write_str(&format!("{opts:?}"));
    h.write_usize(theta.len());
    for m in theta.ops() {
        h.write_predicate_canonical(m);
    }
    h.write_usize(psi.len());
    for m in psi.ops() {
        h.write_predicate_canonical(m);
    }
    h.finish()
}

/// Tag byte for `⊑_inf` verdict keys.
pub const VERDICT_TAG_INF: u8 = 0x1F;
/// Tag byte for `⊑_sup` verdict keys.
pub const VERDICT_TAG_SUP: u8 = 0x2F;

/// Quantisation scale for canonical-factor entries in verdict keys: entries
/// are rounded to multiples of `1/VERDICT_KEY_QUANT` before hashing.
pub const VERDICT_KEY_QUANT: f64 = 1e9;

/// Version of the verdict-key hashing scheme. Persistent verdict stores
/// (the engine's disk cache) record this alongside their own layout
/// version: keys computed under a different schema address different
/// content and must not be mixed.
pub const VERDICT_KEY_SCHEMA: u32 = 2;

// ---------------------------------------------------------------------------
// Serialisable verdict records
// ---------------------------------------------------------------------------

/// Magic prefix of an encoded verdict record (see [`encode_verdict`]).
pub const VERDICT_RECORD_MAGIC: [u8; 4] = *b"NQVD";
/// Format version of encoded verdict records.
pub const VERDICT_RECORD_VERSION: u8 = 1;

/// 64-bit FNV-1a — the integrity checksum on encoded verdict records,
/// shared with the engine's job-affinity signatures so the stack carries
/// one copy of the constants.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a solver [`Verdict`] as a small, self-validating byte record:
/// magic + version + variant payload + FNV-1a checksum, all little-endian.
/// `Holds` records are 17 bytes; `Violated` records carry the witness
/// density matrix so a persisted violation replays with its evidence.
/// This is the value format of the engine's on-disk verdict cache
/// (cross-run persistence was the ROADMAP's stated reason to persist the
/// verdict tier first — the records are tiny and content-keyed).
pub fn encode_verdict(v: &Verdict) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&VERDICT_RECORD_MAGIC);
    out.push(VERDICT_RECORD_VERSION);
    match v {
        Verdict::Holds => out.push(0),
        Verdict::Violated(w) => {
            out.push(1);
            out.extend_from_slice(&(w.index as u64).to_le_bytes());
            out.extend_from_slice(&w.margin.to_le_bytes());
            out.extend_from_slice(&(w.witness.rows() as u64).to_le_bytes());
            out.extend_from_slice(&(w.witness.cols() as u64).to_le_bytes());
            for z in w.witness.as_slice() {
                out.extend_from_slice(&z.re.to_le_bytes());
                out.extend_from_slice(&z.im.to_le_bytes());
            }
        }
        Verdict::Inconclusive {
            index,
            lower,
            upper,
        } => {
            out.push(2);
            out.extend_from_slice(&(*index as u64).to_le_bytes());
            out.extend_from_slice(&lower.to_le_bytes());
            out.extend_from_slice(&upper.to_le_bytes());
        }
    }
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes a record produced by [`encode_verdict`]. Returns `None` on any
/// structural problem — bad magic, unknown version or variant, truncation,
/// trailing bytes, checksum mismatch, or an implausible witness shape —
/// so corrupt or stale cache files degrade to a miss, never a panic.
pub fn decode_verdict(bytes: &[u8]) -> Option<Verdict> {
    const TRAILER: usize = 8;
    if bytes.len() < VERDICT_RECORD_MAGIC.len() + 2 + TRAILER {
        return None;
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - TRAILER);
    let sum = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a(body) != sum {
        return None;
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let take_u64 = |pos: &mut usize| -> Option<u64> {
        Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
    };
    let take_f64 = |pos: &mut usize| -> Option<f64> { Some(f64::from_bits(take_u64(pos)?)) };
    if take(&mut pos, 4)? != VERDICT_RECORD_MAGIC {
        return None;
    }
    if take(&mut pos, 1)? != [VERDICT_RECORD_VERSION] {
        return None;
    }
    let verdict = match take(&mut pos, 1)?[0] {
        0 => Verdict::Holds,
        1 => {
            let index = take_u64(&mut pos)? as usize;
            let margin = take_f64(&mut pos)?;
            let rows = take_u64(&mut pos)? as usize;
            let cols = take_u64(&mut pos)? as usize;
            let n = rows.checked_mul(cols)?;
            // Plausibility bound: witnesses are register-sized density
            // matrices; refuse absurd allocations from corrupt headers.
            if n > (1usize << 24) {
                return None;
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                let re = take_f64(&mut pos)?;
                let im = take_f64(&mut pos)?;
                data.push(nqpv_linalg::c(re, im));
            }
            let witness = nqpv_linalg::CMat::from_fn(rows, cols, |i, j| data[i * cols + j]);
            Verdict::Violated(Violation {
                index,
                witness,
                margin,
            })
        }
        2 => Verdict::Inconclusive {
            index: take_u64(&mut pos)? as usize,
            lower: take_f64(&mut pos)?,
            upper: take_f64(&mut pos)?,
        },
        _ => return None,
    };
    (pos == body.len()).then_some(verdict)
}

/// Double-width streaming hasher used to build [`CacheKey`]s.
///
/// Feeds every byte into two `DefaultHasher`s initialised with different
/// prefixes; `finish` concatenates their outputs. Deterministic within a
/// process, which is all an in-memory memo cache needs.
pub(crate) struct KeyHasher {
    a: DefaultHasher,
    b: DefaultHasher,
}

impl KeyHasher {
    pub(crate) fn new() -> Self {
        let mut a = DefaultHasher::new();
        let mut b = DefaultHasher::new();
        a.write_u8(0xA5);
        b.write_u8(0x5A);
        KeyHasher { a, b }
    }

    pub(crate) fn write_u8(&mut self, v: u8) {
        self.a.write_u8(v);
        self.b.write_u8(v);
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.a.write_u64(v);
        self.b.write_u64(v);
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.a.write(s.as_bytes());
        self.b.write(s.as_bytes());
    }

    /// Exact-bits hash of a float (canonicalising `-0.0` to `0.0`).
    pub(crate) fn write_f64(&mut self, x: f64) {
        self.write_u64((x + 0.0).to_bits());
    }

    /// Exact-bits hash of a complex matrix, dimensions included.
    pub(crate) fn write_matrix(&mut self, m: &nqpv_linalg::CMat) {
        self.write_usize(m.rows());
        self.write_usize(m.cols());
        for z in m.as_slice() {
            self.write_f64(z.re);
            self.write_f64(z.im);
        }
    }

    /// Quantised hash of a complex matrix: each component is rounded to a
    /// multiple of `1/scale` before hashing, so values within rounding
    /// noise of each other (but not near a rounding boundary) hash
    /// together. Used for canonical-factor keys, where entries are
    /// reproducible across representations only up to numerical noise.
    pub(crate) fn write_matrix_quantised(&mut self, m: &nqpv_linalg::CMat, scale: f64) {
        self.write_usize(m.rows());
        self.write_usize(m.cols());
        for z in m.as_slice() {
            // `+ 0.0` canonicalises `-0.0`; round-half-away matches the
            // fingerprint quantiser elsewhere in the stack.
            self.write_u64(((z.re * scale).round() + 0.0).to_bits());
            self.write_u64(((z.im * scale).round() + 0.0).to_bits());
        }
    }

    /// Exact-bits hash of a predicate: dense matrices and factored forms
    /// hash their own representation (under distinct tags), so no dense
    /// materialisation happens on the key path. Different factorings of
    /// the same operator hash apart — that only costs cache hits, never
    /// correctness, and the pipeline is deterministic so byte-identical
    /// jobs reproduce byte-identical factors. The **transformer tier**
    /// uses this exact form; the verdict tier canonicalises factors
    /// instead (see [`KeyHasher::write_predicate_canonical`]).
    pub(crate) fn write_predicate(&mut self, p: &crate::assertion::Predicate) {
        match p {
            crate::assertion::Predicate::Dense(m) => {
                self.write_u8(0xD0);
                self.write_matrix(m);
            }
            crate::assertion::Predicate::Factored(f) => {
                self.write_u8(0xF0);
                self.write_matrix(f.v());
            }
        }
    }

    /// Representation-independent hash of a predicate for **verdict**
    /// keys: dense matrices hash exact bits as before; factored ones hash
    /// the quantised canonical (eigenbasis-phase-fixed) factor, so any
    /// factoring of the same operator lands on the same key — the
    /// property that makes the on-disk verdict cache shareable across
    /// corpora, machines and transform orders.
    pub(crate) fn write_predicate_canonical(&mut self, p: &crate::assertion::Predicate) {
        match p {
            crate::assertion::Predicate::Dense(m) => {
                self.write_u8(0xD0);
                self.write_matrix(m);
            }
            crate::assertion::Predicate::Factored(f) => {
                self.write_u8(0xF1);
                self.write_matrix_quantised(f.canonical(), VERDICT_KEY_QUANT);
            }
        }
    }

    pub(crate) fn finish(&self) -> CacheKey {
        ((self.a.finish() as u128) << 64) | self.b.finish() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_linalg::CMat;

    #[test]
    fn keys_separate_streams_and_are_deterministic() {
        let mut h1 = KeyHasher::new();
        h1.write_str("abc");
        let mut h2 = KeyHasher::new();
        h2.write_str("abc");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = KeyHasher::new();
        h3.write_str("abd");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn verdict_keys_are_factoring_independent() {
        use crate::assertion::{Assertion, Predicate};
        let opts = LownerOptions::default();
        // Two factorings of the same rank-2 projector: {|00⟩,|01⟩} vs the
        // mixed basis {(|00⟩±|01⟩)/√2}.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let v1 = CMat::from_real(4, 2, &[1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let v2 = CMat::from_real(4, 2, &[s, s, s, -s, 0.0, 0.0, 0.0, 0.0]);
        let a1 = Assertion::from_predicates(4, vec![Predicate::from_factor(v1.clone())]).unwrap();
        let a2 = Assertion::from_predicates(4, vec![Predicate::from_factor(v2)]).unwrap();
        let id = Assertion::identity(4);
        let k1 = verdict_key(VERDICT_TAG_INF, &a1, &id, &opts);
        let k2 = verdict_key(VERDICT_TAG_INF, &a2, &id, &opts);
        assert_eq!(k1, k2, "factorings of the same operator must share keys");
        // A genuinely different operator keys apart.
        let v3 = CMat::from_real(4, 2, &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let a3 = Assertion::from_predicates(4, vec![Predicate::from_factor(v3)]).unwrap();
        let k3 = verdict_key(VERDICT_TAG_INF, &a3, &id, &opts);
        assert_ne!(k1, k3);
        // Tag and side-order still separate queries.
        assert_ne!(k1, verdict_key(VERDICT_TAG_SUP, &a1, &id, &opts));
        assert_ne!(k1, verdict_key(VERDICT_TAG_INF, &id, &a1, &opts));
        // And the factored form keys apart from the dense form of the same
        // operator (dense keys stay exact-bits — a representation split,
        // not a correctness issue).
        let dense = Assertion::from_ops(4, vec![v1.mul(&v1.adjoint())]).unwrap();
        assert_ne!(k1, verdict_key(VERDICT_TAG_INF, &dense, &id, &opts));
    }

    #[test]
    fn verdict_codec_roundtrips_every_variant() {
        let wit = CMat::from_real(2, 2, &[0.5, 0.0, 0.0, 0.5]);
        let cases = [
            Verdict::Holds,
            Verdict::Violated(Violation {
                index: 3,
                witness: wit,
                margin: 1.25e-3,
            }),
            Verdict::Inconclusive {
                index: 1,
                lower: -1e-9,
                upper: 2e-8,
            },
        ];
        for v in &cases {
            let bytes = encode_verdict(v);
            let back = decode_verdict(&bytes).expect("roundtrip");
            match (v, &back) {
                (Verdict::Holds, Verdict::Holds) => {}
                (Verdict::Violated(a), Verdict::Violated(b)) => {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.margin, b.margin);
                    assert!(a.witness.approx_eq(&b.witness, 0.0), "witness exact");
                }
                (
                    Verdict::Inconclusive {
                        index: ai,
                        lower: al,
                        upper: au,
                    },
                    Verdict::Inconclusive {
                        index: bi,
                        lower: bl,
                        upper: bu,
                    },
                ) => {
                    assert_eq!((ai, al, au), (bi, bl, bu));
                }
                _ => panic!("variant changed in roundtrip"),
            }
        }
    }

    #[test]
    fn verdict_codec_rejects_corruption() {
        let good = encode_verdict(&Verdict::Holds);
        assert!(decode_verdict(&good).is_some());
        // Any single flipped byte must be caught by the checksum (or the
        // structural checks).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode_verdict(&bad).is_none(), "flip at byte {i}");
        }
        // Truncations and extensions are rejected too.
        for cut in 0..good.len() {
            assert!(decode_verdict(&good[..cut]).is_none());
        }
        let mut long = good.clone();
        long.push(0);
        assert!(decode_verdict(&long).is_none());
        assert!(decode_verdict(&[]).is_none());
    }

    #[test]
    fn matrix_hash_is_exact_not_quantised() {
        let a = CMat::from_real(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let mut b = a.clone();
        b[(0, 0)] = nqpv_linalg::c(1.0 + 1e-15, 0.0);
        let mut ha = KeyHasher::new();
        ha.write_matrix(&a);
        let mut hb = KeyHasher::new();
        hb.write_matrix(&b);
        assert_ne!(ha.finish(), hb.finish(), "distinct bits must hash apart");
        // -0.0 and 0.0 canonicalise together.
        let mut c1 = a.clone();
        c1[(0, 1)] = nqpv_linalg::c(-0.0, 0.0);
        let mut hc = KeyHasher::new();
        hc.write_matrix(&c1);
        let mut hd = KeyHasher::new();
        hd.write_matrix(&a);
        assert_eq!(hc.finish(), hd.finish());
    }
}
