//! Ranking assertions for total correctness (Definition 4.3).
//!
//! A `Θ̂`-ranking assertion is a scheduler-indexed family
//! `{R_i^η : i ≥ 0, η ∈ [[S]]^ℕ}` with (1) `Θ̂ ⊑_inf R_0^η`, (2) each
//! sequence decreasing to `0`, and (3) `P¹∘η₁†(R_i^{η→}) ⊑ R_{i+1}^η`.
//! The checker accepts the *uniform, finitely-presented* form
//! [`RankingCertificate`]: an explicit prefix plus a geometric tail,
//! which instantiates the definition (see DESIGN.md).

use crate::assertion::Assertion;
use crate::error::VerifError;
use nqpv_lang::Stmt;
use nqpv_linalg::{is_psd, lowner_le, CMat};
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_semantics::denote;
use nqpv_solver::{LownerOptions, Verdict};

/// A finitely-presented ranking assertion for one `while` loop
/// (Definition 4.3, uniform in the scheduler, with a geometric tail):
/// predicates `R_0 ⊒ … ⊒ R_k` plus a factor `γ ∈ [0,1)` such that
/// `P¹∘E†(R_i) ⊑ R_{i+1}` for every body denotation `E` and
/// `P¹∘E†(R_k) ⊑ γ·R_k`. The implicit tail `R_{k+j} = γ^j·R_k` then
/// satisfies all three conditions and `⋀_i R_i = 0`.
#[derive(Debug, Clone)]
pub struct RankingCertificate {
    /// The explicit prefix `R_0 … R_k` (full-register dimension).
    pub prefix: Vec<CMat>,
    /// The geometric tail contraction factor `γ < 1`.
    pub tail_factor: f64,
}

impl RankingCertificate {
    /// Convenience constructor.
    pub fn new(prefix: Vec<CMat>, tail_factor: f64) -> Self {
        RankingCertificate {
            prefix,
            tail_factor,
        }
    }

    /// The canonical certificate for an *always-terminating-in-one-step*
    /// loop: `R_0 = I`, `R_1 = P¹` (embedded), tail γ.
    pub fn geometric(dim: usize, p1: CMat, gamma: f64) -> Self {
        RankingCertificate {
            prefix: vec![CMat::identity(dim), p1],
            tail_factor: gamma,
        }
    }
}

/// Discharges a [`RankingCertificate`] against Definition 4.3 for a loop
/// with rule-(WhileT) precondition `phi = P⁰(Ψ)+P¹(Θ)`, loop-free `body`,
/// and the embedded continue projector `p1`.
///
/// # Errors
///
/// Returns [`VerifError::InvalidRanking`] naming the failing condition.
pub fn check_ranking(
    cert: &RankingCertificate,
    phi: &Assertion,
    body: &Stmt,
    p1: &CMat,
    lib: &OperatorLibrary,
    reg: &Register,
    lowner: LownerOptions,
) -> Result<(), VerifError> {
    let dim = reg.dim();
    if cert.prefix.is_empty() {
        return Err(VerifError::InvalidRanking {
            details: "ranking prefix is empty".into(),
        });
    }
    if !(0.0..1.0).contains(&cert.tail_factor) {
        return Err(VerifError::InvalidRanking {
            details: format!("tail factor {} must lie in [0, 1)", cert.tail_factor),
        });
    }
    for (i, r) in cert.prefix.iter().enumerate() {
        if r.rows() != dim || r.cols() != dim {
            return Err(VerifError::InvalidRanking {
                details: format!("R_{i} has wrong dimension"),
            });
        }
        if !r.is_hermitian(1e-7) {
            return Err(VerifError::InvalidRanking {
                details: format!("R_{i} is not hermitian"),
            });
        }
        if !is_psd(r, 1e-8) {
            return Err(VerifError::InvalidRanking {
                details: format!("R_{i} is not positive"),
            });
        }
    }
    // Condition (1): Θ̂ ⊑_inf R_0.
    let r0 = Assertion::from_ops(dim, vec![cert.prefix[0].clone()])?;
    match phi.le_inf(&r0, lowner)? {
        Verdict::Holds => {}
        Verdict::Violated(v) => {
            return Err(VerifError::InvalidRanking {
                details: format!("Θ̂ ⊑_inf R_0 fails with margin {:.3e}", v.margin),
            })
        }
        Verdict::Inconclusive { .. } => {
            return Err(VerifError::InvalidRanking {
                details: "Θ̂ ⊑_inf R_0 unresolved".into(),
            })
        }
    }
    // Condition (2): the prefix is ⊑-decreasing (the γ-tail extends it).
    for w in cert.prefix.windows(2) {
        if !lowner_le(&w[1], &w[0], 1e-8) {
            return Err(VerifError::InvalidRanking {
                details: "ranking prefix is not ⊑-decreasing".into(),
            });
        }
    }
    // Condition (3): P¹∘E†(R_i) ⊑ R_{i+1} for every body denotation E.
    if body.has_loop() {
        return Err(VerifError::InvalidRanking {
            details: "ranking certificates require a loop-free body".into(),
        });
    }
    let body_set = denote(body, lib, reg).map_err(|e| VerifError::InvalidRanking {
        details: format!("cannot enumerate loop body: {e}"),
    })?;
    let k = cert.prefix.len() - 1;
    for (ei, e) in body_set.iter().enumerate() {
        for i in 0..=k {
            let transported = p1.conjugate(&e.apply_heisenberg(&cert.prefix[i]));
            let target = if i < k {
                cert.prefix[i + 1].clone()
            } else {
                cert.prefix[k].scale_re(cert.tail_factor)
            };
            if !lowner_le(&transported, &target, 1e-8) {
                let tname = if i < k {
                    format!("R_{}", i + 1)
                } else {
                    format!("γ·R_{k}")
                };
                return Err(VerifError::InvalidRanking {
                    details: format!("P¹∘E†(R_{i}) ⊑ {tname} fails for body branch {ei}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::parse_stmt;
    use nqpv_quantum::ket;

    #[test]
    fn geometric_certificate_for_rus_loop() {
        // while M01[q] (continue on 1) do q *= H: the Eq.-18 ranking is
        // R_0 = I, R_i = 2^{1-i}|1⟩⟨1|; the finite form uses γ = 1/2.
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q"]).unwrap();
        let body = parse_stmt("[q] *= H").unwrap();
        let p1 = ket("1").projector();
        let phi = Assertion::identity(2);
        let cert = RankingCertificate::geometric(2, p1.clone(), 0.5);
        check_ranking(
            &cert,
            &phi,
            &body,
            &p1,
            &lib,
            &reg,
            LownerOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn tail_factor_too_small_fails() {
        // γ = 0.4 < 1/2: the contraction condition fails.
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q"]).unwrap();
        let body = parse_stmt("[q] *= H").unwrap();
        let p1 = ket("1").projector();
        let phi = Assertion::identity(2);
        let cert = RankingCertificate::geometric(2, p1.clone(), 0.4);
        let err = check_ranking(
            &cert,
            &phi,
            &body,
            &p1,
            &lib,
            &reg,
            LownerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifError::InvalidRanking { .. }));
    }

    #[test]
    fn nondeterministic_body_checks_every_branch() {
        // body = (H # I): the skip branch never leaves |1⟩, so no
        // certificate can contract it.
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q"]).unwrap();
        let body = parse_stmt("( [q] *= H # skip )").unwrap();
        let p1 = ket("1").projector();
        let phi = Assertion::identity(2);
        let cert = RankingCertificate::geometric(2, p1.clone(), 0.9);
        let err = check_ranking(
            &cert,
            &phi,
            &body,
            &p1,
            &lib,
            &reg,
            LownerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifError::InvalidRanking { .. }));
    }

    #[test]
    fn structural_validation() {
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q"]).unwrap();
        let body = parse_stmt("[q] *= H").unwrap();
        let p1 = ket("1").projector();
        let phi = Assertion::identity(2);
        // Empty prefix.
        let err = check_ranking(
            &RankingCertificate::new(vec![], 0.5),
            &phi,
            &body,
            &p1,
            &lib,
            &reg,
            LownerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifError::InvalidRanking { .. }));
        // Negative prefix element.
        let err2 = check_ranking(
            &RankingCertificate::new(vec![CMat::identity(2).scale_re(-1.0)], 0.5),
            &phi,
            &body,
            &p1,
            &lib,
            &reg,
            LownerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err2, VerifError::InvalidRanking { .. }));
    }
}
