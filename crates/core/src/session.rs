//! Session driver: executes whole NQPV source files
//! (`def … end` / `show … end`), maintaining the operator library, proof
//! outcomes and the `show` registry — the programmatic face of the CLI.

use crate::cache::TransformerCache;
use crate::error::VerifError;
use crate::outline::{render_matrix, PredicateRegistry};
use crate::ranking::RankingCertificate;
use crate::transformer::VcOptions;
use crate::verifier::{verify_proof_term_with, VerifyOutcome};
use nqpv_lang::{parse_source, Command, Decl, SourceFile};
use nqpv_quantum::OperatorLibrary;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Errors produced while executing a source file.
#[derive(Debug)]
pub enum SessionError {
    /// Parse failure.
    Parse(nqpv_lang::ParseError),
    /// `.npy` load failure.
    Npy(String, nqpv_linalg::NpyError),
    /// Operator registration failure.
    Library(nqpv_quantum::LibraryError),
    /// Verification failure (structural).
    Verify {
        /// The proof's `def` name.
        name: String,
        /// The underlying error.
        error: VerifError,
    },
    /// `show` of an unknown name.
    UnknownShow(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Npy(path, e) => write!(f, "loading '{path}': {e}"),
            SessionError::Library(e) => write!(f, "{e}"),
            SessionError::Verify { name, error } => {
                write!(f, "verifying proof '{name}':\n{error}")
            }
            SessionError::UnknownShow(n) => write!(f, "show: unknown name '{n}'"),
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionError {
    /// `true` when the underlying failure is a cooperative-deadline
    /// expiry (see [`VerifError::is_timeout`]) — the batch engine maps
    /// these to `TIMEOUT` verdicts instead of generic errors.
    pub fn is_timeout(&self) -> bool {
        matches!(self, SessionError::Verify { error, .. } if error.is_timeout())
    }
}

/// An interactive-style NQPV session.
///
/// # Examples
///
/// ```
/// use nqpv_core::Session;
/// let mut session = Session::new();
/// session.run_str(
///     "def pf := proof [q] : { Pp[q] }; [q] *= H; { P0[q] } end show pf end",
/// )?;
/// assert!(session.outcome("pf").unwrap().status.verified());
/// # Ok::<(), nqpv_core::SessionError>(())
/// ```
pub struct Session {
    lib: OperatorLibrary,
    registry: PredicateRegistry,
    outcomes: HashMap<String, VerifyOutcome>,
    rankings: HashMap<String, HashMap<usize, RankingCertificate>>,
    opts: VcOptions,
    base_dir: PathBuf,
    output: Vec<String>,
    cache: Option<Arc<dyn TransformerCache>>,
    proof_log: Vec<(String, bool)>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("lib", &self.lib)
            .field("registry", &self.registry)
            .field("outcomes", &self.outcomes)
            .field("rankings", &self.rankings)
            .field("opts", &self.opts)
            .field("base_dir", &self.base_dir)
            .field("output", &self.output)
            .field("proof_log", &self.proof_log)
            .field("cache", &self.cache.as_ref().map(|_| "<shared>"))
            .finish()
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh session with the built-in operator library and default
    /// options.
    pub fn new() -> Self {
        Session {
            lib: OperatorLibrary::with_builtins(),
            registry: PredicateRegistry::new(),
            outcomes: HashMap::new(),
            rankings: HashMap::new(),
            opts: VcOptions::default(),
            base_dir: PathBuf::from("."),
            output: Vec::new(),
            cache: None,
            proof_log: Vec::new(),
        }
    }

    /// Overrides the verification options.
    pub fn with_options(mut self, opts: VcOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the directory `.npy` paths are resolved against.
    pub fn with_base_dir<P: Into<PathBuf>>(mut self, dir: P) -> Self {
        self.base_dir = dir.into();
        self
    }

    /// Shares a memo cache for backward-transformer subterm results;
    /// batch drivers hand the same `Arc` to every session so repeated
    /// subterms across a corpus are computed once.
    pub fn with_cache(mut self, cache: Arc<dyn TransformerCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Mutable access to the operator library (to pre-register operators
    /// programmatically, as tests and examples do).
    pub fn library_mut(&mut self) -> &mut OperatorLibrary {
        &mut self.lib
    }

    /// Supplies ranking certificates for the loops of a named proof
    /// (keyed by pre-order loop index), for total-correctness runs.
    pub fn set_rankings(&mut self, proof: &str, rankings: HashMap<usize, RankingCertificate>) {
        self.rankings.insert(proof.to_string(), rankings);
    }

    /// Parses and executes NQPV source text.
    ///
    /// # Errors
    ///
    /// Returns the first [`SessionError`] encountered.
    pub fn run_str(&mut self, src: &str) -> Result<(), SessionError> {
        let file = {
            let mut span = self.opts.tracer.span(nqpv_telemetry::Phase::Parse, "parse");
            if span.recording() {
                span.arg("bytes", nqpv_telemetry::ArgValue::U64(src.len() as u64));
            }
            parse_source(src).map_err(SessionError::Parse)?
        };
        self.run(&file)
    }

    /// Executes a parsed source file.
    ///
    /// # Errors
    ///
    /// Returns the first [`SessionError`] encountered.
    pub fn run(&mut self, file: &SourceFile) -> Result<(), SessionError> {
        for cmd in &file.commands {
            match cmd {
                Command::Def(Decl::LoadOperator { name, path }) => {
                    let full = self.base_dir.join(path);
                    let m = nqpv_linalg::read_matrix(&full)
                        .map_err(|e| SessionError::Npy(path.clone(), e))?;
                    self.lib
                        .insert_auto(name, m)
                        .map_err(SessionError::Library)?;
                }
                Command::Def(Decl::Proof { name, term }) => {
                    // One span per proof: brackets the whole wp+solver
                    // cascade so a multi-proof file's trace shows where
                    // each proof's time went.
                    let mut span = self.opts.tracer.span(nqpv_telemetry::Phase::Other, "proof");
                    if span.recording() {
                        span.arg("name", nqpv_telemetry::ArgValue::Str(name.clone()));
                        span.arg(
                            "qubits",
                            nqpv_telemetry::ArgValue::U64(term.qubits.len() as u64),
                        );
                    }
                    let empty = HashMap::new();
                    let rankings = self.rankings.get(name).unwrap_or(&empty);
                    let outcome = verify_proof_term_with(
                        term,
                        &self.lib,
                        self.opts,
                        rankings,
                        &mut self.registry,
                        self.cache.as_deref(),
                    )
                    .map_err(|error| SessionError::Verify {
                        name: name.clone(),
                        error,
                    })?;
                    self.proof_log
                        .push((name.clone(), outcome.status.verified()));
                    self.outcomes.insert(name.clone(), outcome);
                }
                Command::Show(name) => {
                    let text = self.show(name)?;
                    self.output.push(text);
                }
            }
        }
        Ok(())
    }

    /// Renders a proof outline or an operator matrix by name.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::UnknownShow`] for unresolved names.
    pub fn show(&self, name: &str) -> Result<String, SessionError> {
        if let Some(outcome) = self.outcomes.get(name) {
            let mut text = outcome.outline.clone();
            match &outcome.status {
                crate::verifier::VerifyStatus::Verified => {}
                crate::verifier::VerifyStatus::PreconditionViolated { details, .. } => {
                    text.push_str(&format!("\nError:\n  {details}\n"));
                }
                crate::verifier::VerifyStatus::Unresolved { details } => {
                    text.push_str(&format!("\nWarning: {details}\n"));
                }
            }
            return Ok(text);
        }
        if let Some(m) = self.registry.matrix(name) {
            return Ok(render_matrix(name, m));
        }
        if let Some(op) = self.lib.get(name) {
            return Ok(match op {
                nqpv_quantum::LibOp::Unitary(m) | nqpv_quantum::LibOp::Predicate(m) => {
                    render_matrix(name, m)
                }
                nqpv_quantum::LibOp::Measurement(meas) => {
                    format!("{name}.P0 =\n{}\n{name}.P1 =\n{}", meas.p0(), meas.p1())
                }
            });
        }
        Err(SessionError::UnknownShow(name.to_string()))
    }

    /// The outcome for a named proof, if it has been verified.
    /// With duplicate `def` names, later proofs shadow earlier ones;
    /// [`Session::proof_verdicts`] keeps every run in order.
    pub fn outcome(&self, name: &str) -> Option<&VerifyOutcome> {
        self.outcomes.get(name)
    }

    /// Every proof this session has verified, in execution order, with
    /// its verdict — the per-proof record batch drivers and the CLI
    /// report from (robust to duplicate proof names, unlike the
    /// name-keyed [`Session::outcome`] map).
    pub fn proof_verdicts(&self) -> &[(String, bool)] {
        &self.proof_log
    }

    /// Output accumulated by `show` commands, in order.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// The predicate registry (for `show VARk`-style queries).
    pub fn registry(&self) -> &PredicateRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_simple_proof_and_show() {
        let mut s = Session::new();
        s.run_str("def pf := proof [q] : { Pp[q] }; [q] *= H; { P0[q] } end\nshow pf end")
            .unwrap();
        assert!(s.outcome("pf").unwrap().status.verified());
        assert_eq!(s.output().len(), 1);
        assert!(s.output()[0].contains("proof [q]"));
    }

    #[test]
    fn show_library_operators_and_measurements() {
        let s = Session::new();
        assert!(s.show("H").unwrap().contains("0.7071"));
        let m01 = s.show("M01").unwrap();
        assert!(m01.contains("M01.P0"));
        assert!(m01.contains("M01.P1"));
        assert!(matches!(s.show("NOPE"), Err(SessionError::UnknownShow(_))));
    }

    #[test]
    fn load_command_reads_npy_files() {
        let dir = std::env::temp_dir().join("nqpv_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let m = nqpv_quantum::gates::h();
        nqpv_linalg::write_matrix(dir.join("had.npy"), &m).unwrap();
        let mut s = Session::new().with_base_dir(&dir);
        s.run_str("def MyH := load \"had.npy\" end").unwrap();
        assert!(s.library_mut().unitary("MyH").is_ok());
        // Broken path errors out.
        let mut s2 = Session::new().with_base_dir(&dir);
        let err = s2.run_str("def Q := load \"missing.npy\" end").unwrap_err();
        assert!(matches!(err, SessionError::Npy(_, _)));
    }

    #[test]
    fn structural_errors_carry_the_proof_name() {
        let mut s = Session::new();
        let err = s
            .run_str("def broken := proof [q] : { I[q] }; [q] *= NOPE; { I[q] } end")
            .unwrap_err();
        match err {
            SessionError::Verify { name, .. } => assert_eq!(name, "broken"),
            other => panic!("expected verify error, got {other}"),
        }
    }

    #[test]
    fn failed_precondition_shows_error_in_outline() {
        let mut s = Session::new();
        s.run_str("def pf := proof [q] : { P1[q] }; [q] *= H; { P0[q] } end\nshow pf end")
            .unwrap();
        assert!(!s.outcome("pf").unwrap().status.verified());
        assert!(s.output()[0].contains("Order relation not satisfied"));
    }
}
