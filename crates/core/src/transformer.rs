//! Weakest-(liberal-)precondition transformers (paper Fig. 5) and
//! backward verification-condition generation.
//!
//! The verifier works exactly like the paper's tool (Sec. 6.2): "calculate
//! the weakest preconditions in the backward direction, starting from the
//! postcondition of the whole program". For `while` loops the user-supplied
//! invariant is checked (`Θ_inv ⊑_inf wlp.body.(P⁰(Ψ)+P¹(Θ_inv))`) and the
//! loop contributes `P⁰(Ψ)+P¹(Θ_inv)` as its precondition — rule (While).
//! In total-correctness mode, `abort` maps to `{0}` and loops additionally
//! require a [`RankingCertificate`] discharging Definition 4.3.

use crate::assertion::Assertion;
use crate::cache::{CacheKey, KeyHasher, TransformerCache};
use crate::error::VerifError;
pub use crate::ranking::RankingCertificate;
use nqpv_lang::{AssertionExpr, Stmt};
use nqpv_linalg::{embed, CMat};
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_solver::{LownerOptions, Verdict};
use nqpv_telemetry::{ArgValue, Deadline, Phase, Tracer};
use std::collections::HashMap;

/// Partial (`wlp`) vs total (`wp`) correctness mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Partial correctness: `abort` has wlp `{I}`; loops need invariants.
    Partial,
    /// Total correctness: `abort` has wp `{0}`; loops additionally need
    /// ranking certificates.
    Total,
}

/// Options for verification-condition generation.
#[derive(Debug, Clone, Copy)]
pub struct VcOptions {
    /// Correctness mode.
    pub mode: Mode,
    /// `⊑_inf` solver options.
    pub lowner: LownerOptions,
    /// Bound on intermediate assertion-set sizes.
    pub max_set: usize,
    /// Attempt wlp-fixpoint invariant inference (see [`crate::infer`]) for
    /// `while` loops lacking an `inv:` annotation, instead of failing with
    /// [`VerifError::MissingInvariant`].
    pub infer_invariants: bool,
    /// Run rank detection on resolved assertions so low-rank predicates
    /// enter the pipeline factored (see
    /// [`Assertion::from_expr`]). `false` forces the dense
    /// representation everywhere — the factored-vs-dense ablation knob.
    pub factor_assertions: bool,
    /// Telemetry handle: the backward pass records one `wp` span per
    /// statement visit (with statement path, predicate rank and local
    /// footprint), plus cache-tier lookup spans, into it. Set it with
    /// [`VcOptions::with_tracer`] so the solver's copy
    /// ([`LownerOptions::tracer`]) stays in sync. Inert by default;
    /// deliberately **excluded** from [`context_key`] — which job traced
    /// a subterm must never partition the memo caches.
    pub tracer: Tracer,
    /// Cooperative job deadline, checked at every statement entry of the
    /// backward pass (yielding [`VerifError::Timeout`] with the
    /// statement span) and at every solver obligation through the copy
    /// on [`LownerOptions::deadline`]. Set it with
    /// [`VcOptions::with_deadline`] so the two copies stay in sync.
    /// Never expires by default; like the tracer, it renders a constant
    /// `Debug` and is excluded from [`context_key`] — a job's wall-clock
    /// budget must never partition the memo caches.
    pub deadline: Deadline,
}

impl Default for VcOptions {
    fn default() -> Self {
        VcOptions {
            mode: Mode::Partial,
            lowner: LownerOptions::default(),
            max_set: 1024,
            infer_invariants: false,
            factor_assertions: true,
            tracer: Tracer::DISABLED,
            deadline: Deadline::NONE,
        }
    }
}

impl VcOptions {
    /// Returns a copy carrying `tracer` on both the transformer seam and
    /// the solver seam ([`LownerOptions::tracer`]) — the one way to arm
    /// telemetry, so the two handles cannot drift apart.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> VcOptions {
        self.tracer = tracer;
        self.lowner.tracer = tracer;
        self
    }

    /// Returns a copy carrying `deadline` on both the transformer seam
    /// and the solver seam ([`LownerOptions::deadline`]) — the one way
    /// to arm a job budget, so the two copies cannot drift apart.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> VcOptions {
        self.deadline = deadline;
        self.lowner.deadline = deadline;
        self
    }
}

/// A statement annotated with the computed precondition at its entry —
/// the data behind the tool's proof-outline output.
#[derive(Debug, Clone)]
pub struct Annotated {
    /// The verification condition holding *before* this statement.
    pub pre: Assertion,
    /// The annotated statement structure.
    pub node: AnnotatedNode,
}

/// Statement structure mirroring [`Stmt`], with computed annotations.
#[derive(Debug, Clone)]
pub enum AnnotatedNode {
    /// `skip`.
    Skip,
    /// `abort`.
    Abort,
    /// A user cut assertion (checked against the computed condition).
    Assert,
    /// `q̄ := 0`.
    Init {
        /// Target qubits.
        qubits: Vec<String>,
    },
    /// `q̄ *= U`.
    Unitary {
        /// Target qubits.
        qubits: Vec<String>,
        /// Unitary name.
        op: String,
    },
    /// Sequential composition.
    Seq(Vec<Annotated>),
    /// Nondeterministic choice.
    NDet(Box<Annotated>, Box<Annotated>),
    /// Measurement conditional.
    If {
        /// Measurement name.
        meas: String,
        /// Measured qubits.
        qubits: Vec<String>,
        /// Outcome-1 branch.
        then_branch: Box<Annotated>,
        /// Outcome-0 branch.
        else_branch: Box<Annotated>,
    },
    /// While loop with its (checked) invariant.
    While {
        /// Measurement name.
        meas: String,
        /// Measured qubits.
        qubits: Vec<String>,
        /// The loop id (pre-order numbering; keys ranking certificates).
        loop_id: usize,
        /// The resolved invariant assertion.
        invariant: Assertion,
        /// Annotated body.
        body: Box<Annotated>,
    },
}

/// Computes the annotated backward pass of `stmt` against `post`,
/// discharging all embedded side conditions (cuts, invariants, rankings).
///
/// # Errors
///
/// Returns [`VerifError`] when any side condition fails or resources are
/// exceeded; see the variants for the failure taxonomy.
pub fn backward(
    stmt: &Stmt,
    post: &Assertion,
    lib: &OperatorLibrary,
    reg: &Register,
    opts: VcOptions,
    rankings: &HashMap<usize, RankingCertificate>,
) -> Result<Annotated, VerifError> {
    backward_with_cache(stmt, post, lib, reg, opts, rankings, None)
}

/// [`backward`] with an optional memo cache for subterm results (see
/// [`crate::cache`]): composite subterms whose annotated pass was already
/// computed — in this run or for an earlier program sharing the cache —
/// are returned without recomputation.
///
/// # Errors
///
/// Same as [`backward`]. Failed subterms are never cached.
pub fn backward_with_cache(
    stmt: &Stmt,
    post: &Assertion,
    lib: &OperatorLibrary,
    reg: &Register,
    opts: VcOptions,
    rankings: &HashMap<usize, RankingCertificate>,
    cache: Option<&dyn TransformerCache>,
) -> Result<Annotated, VerifError> {
    let mut ctx = Ctx {
        lib,
        reg,
        opts,
        rankings,
        next_loop_id: 0,
        cache,
        ctx_key: context_key(reg, opts),
        path: Vec::new(),
    };
    let tagged = tag_loops(stmt, &mut ctx.next_loop_id);
    ctx.go(&tagged, post)
}

/// Hashes the run context every subterm key must incorporate: register
/// layout and the verification options that influence computed results.
fn context_key(reg: &Register, opts: VcOptions) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_usize(reg.n_qubits());
    for name in reg.names() {
        h.write_str(name);
    }
    h.write_u8(match opts.mode {
        Mode::Partial => 0,
        Mode::Total => 1,
    });
    h.write_usize(opts.max_set);
    // Factored and dense pipelines compute the same operators but store
    // them differently; keep their cached artifacts apart.
    h.write_u8(opts.factor_assertions as u8);
    // The solver verdict depends on every LownerOptions field (eps,
    // iteration budgets, lanczos and primal sub-options); the Debug
    // rendering covers them all — f64 Debug is shortest-roundtrip, so
    // distinct values always render apart.
    h.write_str(&format!("{:?}", opts.lowner));
    h.finish()
}

/// Convenience wrapper returning only the computed weakest (liberal)
/// precondition.
///
/// # Errors
///
/// Same as [`backward`].
pub fn precondition(
    stmt: &Stmt,
    post: &Assertion,
    lib: &OperatorLibrary,
    reg: &Register,
    opts: VcOptions,
    rankings: &HashMap<usize, RankingCertificate>,
) -> Result<Assertion, VerifError> {
    Ok(backward(stmt, post, lib, reg, opts, rankings)?.pre)
}

/// Internal statement tree with pre-order loop ids.
enum TStmt {
    Skip,
    Abort,
    Assert(AssertionExpr),
    Init(Vec<String>),
    Unitary(Vec<String>, String),
    Seq(Vec<TStmt>),
    NDet(Box<TStmt>, Box<TStmt>),
    If {
        meas: String,
        qubits: Vec<String>,
        then_branch: Box<TStmt>,
        else_branch: Box<TStmt>,
    },
    While {
        meas: String,
        qubits: Vec<String>,
        invariant: Option<AssertionExpr>,
        loop_id: usize,
        body: Box<TStmt>,
    },
}

fn tag_loops(stmt: &Stmt, counter: &mut usize) -> TStmt {
    match stmt {
        Stmt::Skip => TStmt::Skip,
        Stmt::Abort => TStmt::Abort,
        Stmt::Assert(a) => TStmt::Assert(a.clone()),
        Stmt::Init { qubits } => TStmt::Init(qubits.clone()),
        Stmt::Unitary { qubits, op } => TStmt::Unitary(qubits.clone(), op.clone()),
        Stmt::Seq(items) => TStmt::Seq(items.iter().map(|s| tag_loops(s, counter)).collect()),
        Stmt::NDet(a, b) => TStmt::NDet(
            Box::new(tag_loops(a, counter)),
            Box::new(tag_loops(b, counter)),
        ),
        Stmt::If {
            meas,
            qubits,
            then_branch,
            else_branch,
        } => TStmt::If {
            meas: meas.clone(),
            qubits: qubits.clone(),
            then_branch: Box::new(tag_loops(then_branch, counter)),
            else_branch: Box::new(tag_loops(else_branch, counter)),
        },
        Stmt::While {
            meas,
            qubits,
            invariant,
            body,
        } => {
            let loop_id = *counter;
            *counter += 1;
            TStmt::While {
                meas: meas.clone(),
                qubits: qubits.clone(),
                invariant: invariant.clone(),
                loop_id,
                body: Box::new(tag_loops(body, counter)),
            }
        }
    }
}

struct Ctx<'a> {
    lib: &'a OperatorLibrary,
    reg: &'a Register,
    opts: VcOptions,
    rankings: &'a HashMap<usize, RankingCertificate>,
    next_loop_id: usize,
    cache: Option<&'a dyn TransformerCache>,
    ctx_key: CacheKey,
    /// Child-index path from the program root to the subterm currently
    /// being transformed — the statement *span* reported when an embedded
    /// obligation (cut assertion, loop invariant) fails, so a rejected
    /// comparison names the statement that produced it.
    path: Vec<usize>,
}

/// Measurement branch projectors kept at their native dimension with a
/// register footprint, so the (Meas)/(While) sandwiches `P·M·P` run as
/// strided conjugations (`O(4ⁿ·2ᵏ)` dense, `O(2ⁿ·2ᵏ·r)` on factored
/// predicates) instead of embedded dense matmuls (`O(8ⁿ)`).
struct BranchProjectors {
    p0: CMat,
    p1: CMat,
    pos: Vec<usize>,
}

impl BranchProjectors {
    /// `P⁰·Θ·P⁰` element-wise via the strided/factored kernels.
    fn sandwich0(&self, a: &Assertion, n: usize) -> Assertion {
        a.sandwich_local(&self.p0, &self.pos, n)
    }

    /// `P¹·Θ·P¹` element-wise via the strided/factored kernels.
    fn sandwich1(&self, a: &Assertion, n: usize) -> Assertion {
        a.sandwich_local(&self.p1, &self.pos, n)
    }

    /// The full-dimension embedding of `P¹`, for the (rare) consumers that
    /// need a whole-space operator (ranking certificates).
    fn embedded_p1(&self, n: usize) -> CMat {
        embed(&self.p1, &self.pos, n)
    }
}

impl Ctx<'_> {
    /// Backward pass over one subterm, consulting the memo cache for
    /// composite nodes (leaves are cheaper to recompute than to look up).
    ///
    /// Every visit records one `wp` span (even cache hits — the span's
    /// `cached` argument tells them apart), so a trace of a loop-free
    /// program carries exactly one wp span per statement node.
    fn go(&mut self, stmt: &TStmt, post: &Assertion) -> Result<Annotated, VerifError> {
        // Cooperative cancellation at every statement boundary: the span
        // in the error is the backward pass's position when the budget
        // ran out — the "how far did it get" marker of a TIMEOUT
        // verdict.
        if self.opts.deadline.expired() {
            return Err(VerifError::Timeout { at: self.span() });
        }
        let tracer = self.opts.tracer;
        let mut span = tracer.span(Phase::Wp, stmt_kind(stmt));
        if span.recording() {
            span.arg("path", ArgValue::Str(self.span()));
            span.arg("set_size", ArgValue::U64(post.len() as u64));
            if let Some(r) = post.ops().iter().filter_map(|p| p.rank()).max() {
                span.arg("max_rank", ArgValue::U64(r as u64));
            }
            if let Some(fp) = stmt_footprint(stmt) {
                span.arg("footprint", ArgValue::U64(fp as u64));
            }
        }
        match self.cache {
            Some(cache) if self.cacheable(stmt) => {
                let key = self.subterm_key(stmt, post);
                let hit = {
                    let mut cspan = tracer.span(Phase::Cache, "transformer_tier");
                    let hit = cache.get(key);
                    cspan.classify(
                        "transformer_tier",
                        if hit.is_some() { "hit" } else { "miss" },
                    );
                    hit
                };
                if let Some(hit) = hit {
                    span.arg("cached", ArgValue::Bool(true));
                    return Ok(hit);
                }
                let ann = self.go_uncached(stmt, post)?;
                cache.put(key, &ann);
                Ok(ann)
            }
            _ => self.go_uncached(stmt, post),
        }
    }

    /// [`Ctx::go`] on a child subterm, tracking the statement path for
    /// span-bearing failure reports.
    fn go_child(
        &mut self,
        idx: usize,
        stmt: &TStmt,
        post: &Assertion,
    ) -> Result<Annotated, VerifError> {
        self.path.push(idx);
        let out = self.go(stmt, post);
        self.path.pop();
        out
    }

    /// Renders the current statement path, e.g. `statement 2.0` (dotted
    /// child indices from the program root) or `top level`.
    fn span(&self) -> String {
        if self.path.is_empty() {
            "top level".to_string()
        } else {
            let dotted: Vec<String> = self.path.iter().map(ToString::to_string).collect();
            format!("statement {}", dotted.join("."))
        }
    }

    /// Whether a subterm's annotated result may be memoised: composite
    /// nodes only, and loop-bearing subterms only in partial mode (total
    /// mode consults ranking certificates outside the cache key).
    fn cacheable(&self, stmt: &TStmt) -> bool {
        let composite = matches!(
            stmt,
            TStmt::Seq(_) | TStmt::NDet(_, _) | TStmt::If { .. } | TStmt::While { .. }
        );
        composite && (self.opts.mode == Mode::Partial || !contains_while(stmt))
    }

    /// Content key of `(subterm, postcondition)` under the run context:
    /// structure plus every referenced operator resolved to exact matrix
    /// bits, so renamed-but-identical and identical-by-content subterms
    /// share entries while any numerical difference separates them.
    fn subterm_key(&self, stmt: &TStmt, post: &Assertion) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_u64((self.ctx_key >> 64) as u64);
        h.write_u64(self.ctx_key as u64);
        self.hash_stmt(&mut h, stmt);
        h.write_usize(post.dim());
        h.write_usize(post.len());
        for m in post.ops() {
            h.write_predicate(m);
        }
        h.finish()
    }

    fn hash_expr(&self, h: &mut KeyHasher, expr: &AssertionExpr) {
        h.write_usize(expr.terms.len());
        for term in &expr.terms {
            h.write_str(&term.op);
            h.write_usize(term.qubits.len());
            for q in &term.qubits {
                h.write_str(q);
            }
            if let Ok(m) = self.lib.predicate(&term.op) {
                h.write_matrix(&m);
            }
        }
    }

    fn hash_stmt(&self, h: &mut KeyHasher, stmt: &TStmt) {
        match stmt {
            TStmt::Skip => h.write_u8(0),
            TStmt::Abort => h.write_u8(1),
            TStmt::Assert(expr) => {
                h.write_u8(2);
                self.hash_expr(h, expr);
            }
            TStmt::Init(qubits) => {
                h.write_u8(3);
                h.write_usize(qubits.len());
                for q in qubits {
                    h.write_str(q);
                }
            }
            TStmt::Unitary(qubits, op) => {
                h.write_u8(4);
                h.write_usize(qubits.len());
                for q in qubits {
                    h.write_str(q);
                }
                h.write_str(op);
                if let Ok(u) = self.lib.unitary(op) {
                    h.write_matrix(u);
                }
            }
            TStmt::Seq(items) => {
                h.write_u8(5);
                h.write_usize(items.len());
                for item in items {
                    self.hash_stmt(h, item);
                }
            }
            TStmt::NDet(a, b) => {
                h.write_u8(6);
                self.hash_stmt(h, a);
                self.hash_stmt(h, b);
            }
            TStmt::If {
                meas,
                qubits,
                then_branch,
                else_branch,
            } => {
                h.write_u8(7);
                self.hash_meas(h, meas, qubits);
                self.hash_stmt(h, then_branch);
                self.hash_stmt(h, else_branch);
            }
            TStmt::While {
                meas,
                qubits,
                invariant,
                body,
                // Pre-order numbering is positional, not semantic; rankings
                // (the only loop_id consumer) gate `cacheable` instead.
                loop_id: _,
            } => {
                h.write_u8(8);
                self.hash_meas(h, meas, qubits);
                match invariant {
                    Some(expr) => {
                        h.write_u8(1);
                        self.hash_expr(h, expr);
                        // Inference settings change what an un-annotated
                        // loop produces, so keep annotated/inferred apart.
                    }
                    None => h.write_u8(if self.opts.infer_invariants { 2 } else { 0 }),
                }
                self.hash_stmt(h, body);
            }
        }
    }

    fn hash_meas(&self, h: &mut KeyHasher, meas: &str, qubits: &[String]) {
        h.write_str(meas);
        h.write_usize(qubits.len());
        for q in qubits {
            h.write_str(q);
        }
        if let Ok(m) = self.lib.measurement(meas) {
            h.write_matrix(m.p0());
            h.write_matrix(m.p1());
        }
    }

    fn go_uncached(&mut self, stmt: &TStmt, post: &Assertion) -> Result<Annotated, VerifError> {
        let n = self.reg.n_qubits();
        let dim = self.reg.dim();
        match stmt {
            TStmt::Skip => Ok(Annotated {
                pre: post.clone(),
                node: AnnotatedNode::Skip,
            }),
            TStmt::Abort => Ok(Annotated {
                pre: match self.opts.mode {
                    Mode::Partial => Assertion::identity(dim),
                    Mode::Total => Assertion::zero(dim),
                },
                node: AnnotatedNode::Abort,
            }),
            TStmt::Assert(expr) => {
                let a = Assertion::from_expr_with(
                    expr,
                    self.lib,
                    self.reg,
                    self.opts.factor_assertions,
                )?;
                if !a.validate_predicates(1e-6) {
                    return Err(VerifError::InvalidInvariant {
                        details: "cut assertion contains operators outside 0 ⊑ M ⊑ I".into(),
                    });
                }
                match a.le_inf_cached(post, self.opts.lowner, self.cache)? {
                    Verdict::Holds => Ok(Annotated {
                        pre: a,
                        node: AnnotatedNode::Assert,
                    }),
                    Verdict::Violated(v) => Err(VerifError::CutFailed {
                        index: 0,
                        details: format!(
                            "cut assertion does not entail the computed condition \
                             (margin {:.3e}, at {})",
                            v.margin,
                            self.span()
                        ),
                    }),
                    Verdict::Inconclusive { lower, upper, .. } => Err(VerifError::Inconclusive {
                        details: format!(
                            "cut assertion comparison unresolved in [{lower:.3e}, {upper:.3e}]"
                        ),
                    }),
                }
            }
            TStmt::Init(qubits) => {
                let pos = self.reg.positions(qubits)?;
                // Dense elements run the strided initialiser kernels;
                // factored ones take the structured I ⊗ ⟨0|M|0⟩ route
                // (rank growth + recompression) — see `Assertion::wp_init`.
                let pre = post.wp_init(&pos, n).check_size(self.opts.max_set)?;
                Ok(Annotated {
                    pre,
                    node: AnnotatedNode::Init {
                        qubits: qubits.clone(),
                    },
                })
            }
            TStmt::Unitary(qubits, op) => {
                let u = self.lib.unitary(op)?;
                let pos = self.reg.positions(qubits)?;
                let k = u.rows().trailing_zeros() as usize;
                if k != pos.len() {
                    return Err(VerifError::ArityMismatch {
                        op: op.clone(),
                        expected: k,
                        got: pos.len(),
                    });
                }
                let pre = post.wp_unitary(u, &pos, n).check_size(self.opts.max_set)?;
                Ok(Annotated {
                    pre,
                    node: AnnotatedNode::Unitary {
                        qubits: qubits.clone(),
                        op: op.clone(),
                    },
                })
            }
            TStmt::Seq(items) => {
                let mut annotated_rev: Vec<Annotated> = Vec::with_capacity(items.len());
                let mut current = post.clone();
                for (idx, item) in items.iter().enumerate().rev() {
                    let ann = self.go_child(idx, item, &current)?;
                    current = ann.pre.clone();
                    annotated_rev.push(ann);
                }
                annotated_rev.reverse();
                Ok(Annotated {
                    pre: current,
                    node: AnnotatedNode::Seq(annotated_rev),
                })
            }
            TStmt::NDet(a, b) => {
                let left = self.go_child(0, a, post)?;
                let right = self.go_child(1, b, post)?;
                let pre = left.pre.union(&right.pre)?.check_size(self.opts.max_set)?;
                Ok(Annotated {
                    pre,
                    node: AnnotatedNode::NDet(Box::new(left), Box::new(right)),
                })
            }
            TStmt::If {
                meas,
                qubits,
                then_branch,
                else_branch,
            } => {
                let br = self.branch_projectors(meas, qubits)?;
                let then_ann = self.go_child(0, then_branch, post)?;
                let else_ann = self.go_child(1, else_branch, post)?;
                // xp.(if).M = P¹(xp.S₁.M) + P⁰(xp.S₀.M)  (Fig. 5) — the
                // sandwiches run strided on the local projectors (factored
                // predicates stay factored); no full-dimension embedding
                // is materialised.
                let sandw1 = br.sandwich1(&then_ann.pre, n);
                let sandw0 = br.sandwich0(&else_ann.pre, n);
                let pre = sandw1
                    .sum_pairwise(&sandw0)?
                    .check_size(self.opts.max_set)?;
                Ok(Annotated {
                    pre,
                    node: AnnotatedNode::If {
                        meas: meas.clone(),
                        qubits: qubits.clone(),
                        then_branch: Box::new(then_ann),
                        else_branch: Box::new(else_ann),
                    },
                })
            }
            TStmt::While {
                meas,
                qubits,
                invariant,
                loop_id,
                body,
            } => {
                let inv = match invariant {
                    Some(inv_expr) => {
                        let inv = Assertion::from_expr_with(
                            inv_expr,
                            self.lib,
                            self.reg,
                            self.opts.factor_assertions,
                        )?;
                        if !inv.validate_predicates(1e-6) {
                            return Err(VerifError::InvalidInvariant {
                                details: "invariant contains operators outside 0 ⊑ M ⊑ I".into(),
                            });
                        }
                        inv
                    }
                    None if self.opts.infer_invariants => {
                        // wlp-fixpoint inference (Lemma A.2); inner passes
                        // run in partial mode — rankings are still checked
                        // below for Mode::Total.
                        let infer_opts = crate::infer::InferOptions {
                            max_iters: 64,
                            vc: VcOptions {
                                mode: Mode::Partial,
                                ..self.opts
                            },
                        };
                        match crate::infer::infer_invariant(
                            meas,
                            qubits,
                            &untag(body),
                            post,
                            self.lib,
                            self.reg,
                            infer_opts,
                        )? {
                            crate::infer::InferredInvariant::Found { invariant, .. } => invariant,
                            crate::infer::InferredInvariant::NoFixpoint { .. } => {
                                return Err(VerifError::MissingInvariant)
                            }
                        }
                    }
                    None => return Err(VerifError::MissingInvariant),
                };
                let br = self.branch_projectors(meas, qubits)?;
                // Φ = P⁰(Ψ) + P¹(Θ_inv): the (While)-rule precondition.
                let phi = br
                    .sandwich0(post, n)
                    .sum_pairwise(&br.sandwich1(&inv, n))?
                    .check_size(self.opts.max_set)?;
                let body_ann = self.go_child(0, body, &phi)?;
                // Invariant validity: Θ_inv ⊑_inf wlp.body.Φ.
                match inv.le_inf_cached(&body_ann.pre, self.opts.lowner, self.cache)? {
                    Verdict::Holds => {}
                    Verdict::Violated(v) => {
                        return Err(VerifError::InvalidInvariant {
                            details: format!(
                                "{{ inv }} <= {{ wlp of loop body }} fails with \
                                 margin {:.3e} (loop {loop_id}, at {})",
                                v.margin,
                                self.span()
                            ),
                        })
                    }
                    Verdict::Inconclusive { lower, upper, .. } => {
                        return Err(VerifError::Inconclusive {
                            details: format!(
                                "invariant comparison unresolved in [{lower:.3e}, {upper:.3e}]"
                            ),
                        })
                    }
                }
                if self.opts.mode == Mode::Total {
                    let cert = self
                        .rankings
                        .get(loop_id)
                        .ok_or(VerifError::MissingRanking)?;
                    // The ranking checker is a per-loop side condition, not
                    // the per-statement hot path; it takes the embedded P¹.
                    self.check_ranking(cert, &phi, body, &br.embedded_p1(n))?;
                }
                Ok(Annotated {
                    pre: phi,
                    node: AnnotatedNode::While {
                        meas: meas.clone(),
                        qubits: qubits.clone(),
                        loop_id: *loop_id,
                        invariant: inv,
                        body: Box::new(body_ann),
                    },
                })
            }
        }
    }

    /// Resolves the branch projectors `P⁰`, `P¹` of a measurement in
    /// *local form* — native dimension plus footprint — for the strided
    /// sandwich kernels.
    fn branch_projectors(
        &self,
        meas: &str,
        qubits: &[String],
    ) -> Result<BranchProjectors, VerifError> {
        let m = self.lib.measurement(meas)?;
        let pos = self.reg.positions(qubits)?;
        if m.n_qubits() != pos.len() {
            return Err(VerifError::ArityMismatch {
                op: meas.to_string(),
                expected: m.n_qubits(),
                got: pos.len(),
            });
        }
        Ok(BranchProjectors {
            p0: m.p0().clone(),
            p1: m.p1().clone(),
            pos,
        })
    }

    /// Discharges a [`RankingCertificate`] via [`crate::ranking::check_ranking`].
    fn check_ranking(
        &self,
        cert: &RankingCertificate,
        phi: &Assertion,
        body: &TStmt,
        p1: &CMat,
    ) -> Result<(), VerifError> {
        crate::ranking::check_ranking(
            cert,
            phi,
            &untag(body),
            p1,
            self.lib,
            self.reg,
            self.opts.lowner,
        )
    }
}

/// Stable span name for a statement node (the wp span's `name`).
fn stmt_kind(stmt: &TStmt) -> &'static str {
    match stmt {
        TStmt::Skip => "skip",
        TStmt::Abort => "abort",
        TStmt::Assert(_) => "assert",
        TStmt::Init(_) => "init",
        TStmt::Unitary(_, _) => "unitary",
        TStmt::Seq(_) => "seq",
        TStmt::NDet(_, _) => "ndet",
        TStmt::If { .. } => "if",
        TStmt::While { .. } => "while",
    }
}

/// The statement's local register footprint — how many qubits its
/// operator touches — for the statements that have one.
fn stmt_footprint(stmt: &TStmt) -> Option<usize> {
    match stmt {
        TStmt::Init(qubits) | TStmt::Unitary(qubits, _) => Some(qubits.len()),
        TStmt::If { qubits, .. } | TStmt::While { qubits, .. } => Some(qubits.len()),
        _ => None,
    }
}

/// Whether any `while` loop occurs in the subterm.
fn contains_while(stmt: &TStmt) -> bool {
    match stmt {
        TStmt::While { .. } => true,
        TStmt::Seq(items) => items.iter().any(contains_while),
        TStmt::NDet(a, b) => contains_while(a) || contains_while(b),
        TStmt::If {
            then_branch,
            else_branch,
            ..
        } => contains_while(then_branch) || contains_while(else_branch),
        _ => false,
    }
}

/// Reconstructs a plain [`Stmt`] from the tagged tree (for semantics calls).
fn untag(stmt: &TStmt) -> Stmt {
    match stmt {
        TStmt::Skip => Stmt::Skip,
        TStmt::Abort => Stmt::Abort,
        TStmt::Assert(a) => Stmt::Assert(a.clone()),
        TStmt::Init(q) => Stmt::Init { qubits: q.clone() },
        TStmt::Unitary(q, op) => Stmt::Unitary {
            qubits: q.clone(),
            op: op.clone(),
        },
        TStmt::Seq(items) => Stmt::Seq(items.iter().map(untag).collect()),
        TStmt::NDet(a, b) => Stmt::NDet(Box::new(untag(a)), Box::new(untag(b))),
        TStmt::If {
            meas,
            qubits,
            then_branch,
            else_branch,
        } => Stmt::If {
            meas: meas.clone(),
            qubits: qubits.clone(),
            then_branch: Box::new(untag(then_branch)),
            else_branch: Box::new(untag(else_branch)),
        },
        TStmt::While {
            meas,
            qubits,
            invariant,
            body,
            ..
        } => Stmt::While {
            meas: meas.clone(),
            qubits: qubits.clone(),
            invariant: invariant.clone(),
            body: Box::new(untag(body)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::{parse_stmt, OpApp};
    use nqpv_linalg::{CVec, TOL};
    use nqpv_quantum::ket;

    fn setup(names: &[&str]) -> (OperatorLibrary, Register) {
        (
            OperatorLibrary::with_builtins(),
            Register::new(names).unwrap(),
        )
    }

    fn no_rankings() -> HashMap<usize, RankingCertificate> {
        HashMap::new()
    }

    #[test]
    fn unit_rule_is_adjoint_conjugation() {
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("[q] *= H").unwrap();
        // post = P0 ⇒ pre = H†P0H = |+⟩⟨+|.
        let post = Assertion::from_expr(
            &nqpv_lang::AssertionExpr::singleton(OpApp::new("P0", &["q"])),
            &lib,
            &reg,
        )
        .unwrap();
        let pre =
            precondition(&s, &post, &lib, &reg, VcOptions::default(), &no_rankings()).unwrap();
        assert_eq!(pre.len(), 1);
        let plus = ket("+").projector();
        assert!(pre.ops()[0].approx_eq(&plus, TOL));
    }

    #[test]
    fn init_rule_matches_fig5_formula() {
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("[q] := 0").unwrap();
        // xp.(q:=0).M = Σ_i |i⟩⟨0| M |0⟩⟨i| = ⟨0|M|0⟩·I (1 qubit).
        let m = ket("+").projector();
        let post = Assertion::from_ops(2, vec![m.clone()]).unwrap();
        let pre =
            precondition(&s, &post, &lib, &reg, VcOptions::default(), &no_rankings()).unwrap();
        let expected = CMat::identity(2).scale_re(m[(0, 0)].re);
        assert!(pre.ops()[0].approx_eq(&expected, TOL));
    }

    #[test]
    fn abort_differs_between_modes() {
        let (lib, reg) = setup(&["q"]);
        let s = Stmt::Abort;
        let post = Assertion::zero(2);
        let wlp = precondition(
            &s,
            &post,
            &lib,
            &reg,
            VcOptions {
                mode: Mode::Partial,
                ..VcOptions::default()
            },
            &no_rankings(),
        )
        .unwrap();
        assert!(wlp.ops()[0].approx_eq(&CMat::identity(2), TOL));
        let wp = precondition(
            &s,
            &post,
            &lib,
            &reg,
            VcOptions {
                mode: Mode::Total,
                ..VcOptions::default()
            },
            &no_rankings(),
        )
        .unwrap();
        assert!(wp.ops()[0].is_zero(TOL));
    }

    #[test]
    fn ndet_takes_union() {
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("( skip # [q] *= X )").unwrap();
        let post = Assertion::from_expr(
            &nqpv_lang::AssertionExpr::singleton(OpApp::new("P0", &["q"])),
            &lib,
            &reg,
        )
        .unwrap();
        let pre =
            precondition(&s, &post, &lib, &reg, VcOptions::default(), &no_rankings()).unwrap();
        // {P0, X P0 X = P1}.
        assert_eq!(pre.len(), 2);
    }

    #[test]
    fn if_rule_combines_branch_preconditions() {
        let (lib, reg) = setup(&["q"]);
        // if M01 then X else skip: post P0.
        let s = parse_stmt("if M01[q] then [q] *= X else skip end").unwrap();
        let post = Assertion::from_expr(
            &nqpv_lang::AssertionExpr::singleton(OpApp::new("P0", &["q"])),
            &lib,
            &reg,
        )
        .unwrap();
        let pre =
            precondition(&s, &post, &lib, &reg, VcOptions::default(), &no_rankings()).unwrap();
        // pre = P1(X†P0X)P1 + P0(P0)P0 = P1·P1·P1 + P0 = P1 + P0 = I.
        assert_eq!(pre.len(), 1);
        assert!(pre.ops()[0].approx_eq(&CMat::identity(2), 1e-9));
    }

    #[test]
    fn wp_duality_on_random_loopfree_programs() {
        // tr(wlp.S.M · ρ) vs Exp over semantics: for deterministic S the
        // identity tr(E†(M)ρ) = tr(M·E(ρ)) must hold; for nondeterministic
        // sets, the wlp set elements must each correspond to a semantic
        // branch (Lemma A.1(2) for wlp: E†(M) + I - E†(I)).
        let (lib, reg) = setup(&["q1", "q2"]);
        let srcs = [
            "[q1] *= H; [q1 q2] *= CX",
            "if M01[q1] then [q2] *= X else [q2] *= H end",
            "[q1] := 0; ( skip # [q1] *= X )",
        ];
        for src in srcs {
            let s = parse_stmt(src).unwrap();
            let m = ket("00").projector();
            let post = Assertion::from_ops(4, vec![m.clone()]).unwrap();
            let opts = VcOptions {
                mode: Mode::Total,
                ..VcOptions::default()
            };
            let pre = precondition(&s, &post, &lib, &reg, opts, &no_rankings()).unwrap();
            let sem = nqpv_semantics::denote(&s, &lib, &reg).unwrap();
            // wp set = {E†(M) : E ∈ [[S]]} (Lemma A.1(1)): same cardinality
            // after dedupe and pointwise agreement of expectations.
            let rho = ket("++").projector();
            let wp_vals: Vec<f64> = pre.ops().iter().map(|w| w.trace_product(&rho).re).collect();
            let sem_vals: Vec<f64> = sem
                .iter()
                .map(|e| e.apply(&rho).trace_product(&m).re)
                .collect();
            for sv in &sem_vals {
                assert!(
                    wp_vals.iter().any(|wv| (wv - sv).abs() < 1e-8),
                    "{src}: semantic value {sv} missing from wp values {wp_vals:?}"
                );
            }
        }
    }

    #[test]
    fn while_requires_invariant() {
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("while M01[q] do [q] *= H end").unwrap();
        let post = Assertion::identity(2);
        let err =
            precondition(&s, &post, &lib, &reg, VcOptions::default(), &no_rankings()).unwrap_err();
        assert!(matches!(err, VerifError::MissingInvariant));
    }

    #[test]
    fn qwalk_invariant_is_accepted_and_p0_rejected() {
        let (mut lib, reg) = {
            let (l, r) = setup(&["q1", "q2"]);
            (l, r)
        };
        // invN = [|00⟩] + [(|01⟩+|11⟩)/√2] as a single predicate (sum of two
        // orthogonal rank-1 projectors).
        let n00 = ket("00").projector();
        let v = CVec::new(vec![
            nqpv_linalg::cr(0.0),
            nqpv_linalg::cr(std::f64::consts::FRAC_1_SQRT_2),
            nqpv_linalg::cr(0.0),
            nqpv_linalg::cr(std::f64::consts::FRAC_1_SQRT_2),
        ]);
        let inv_n = n00.add_mat(&v.projector());
        lib.insert_predicate("invN", inv_n).unwrap();
        let src = "{ inv : invN[q1 q2] }; while MQWalk[q1 q2] do \
                   ( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 ) end";
        let s = parse_stmt(src).unwrap();
        let post = Assertion::zero(4);
        let pre =
            precondition(&s, &post, &lib, &reg, VcOptions::default(), &no_rankings()).unwrap();
        // Φ = P⁰(0) + P¹(invN) = invN (its support avoids |10⟩).
        assert_eq!(pre.len(), 1);
        // Now the paper's Sec. 6.2 error scenario: invariant P0[q1] fails.
        let bad_src = "{ inv : P0[q1] }; while MQWalk[q1 q2] do \
                       ( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 ) end";
        let bad = parse_stmt(bad_src).unwrap();
        let err = precondition(
            &bad,
            &post,
            &lib,
            &reg,
            VcOptions::default(),
            &no_rankings(),
        )
        .unwrap_err();
        assert!(
            matches!(err, VerifError::InvalidInvariant { .. }),
            "got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("not a valid loop invariant"), "{msg}");
    }

    #[test]
    fn total_mode_requires_and_checks_rankings() {
        let (lib, reg) = setup(&["q"]);
        // Repeat-until-success: continue on outcome 1, body H.
        let src = "{ inv : I[q] }; while M01[q] do [q] *= H end";
        let s = parse_stmt(src).unwrap();
        let post = Assertion::identity(2);
        let opts = VcOptions {
            mode: Mode::Total,
            ..VcOptions::default()
        };
        // Missing ranking.
        let err = precondition(&s, &post, &lib, &reg, opts, &no_rankings()).unwrap_err();
        assert!(matches!(err, VerifError::MissingRanking));
        // Valid geometric ranking: R_0 = I, R_1 = |1⟩⟨1|, γ = 1/2.
        let mut rankings = HashMap::new();
        rankings.insert(
            0,
            RankingCertificate {
                prefix: vec![CMat::identity(2), ket("1").projector()],
                tail_factor: 0.5,
            },
        );
        let pre = precondition(&s, &post, &lib, &reg, opts, &rankings).unwrap();
        // Φ = P0(I) + P1(I) = I.
        assert!(pre.ops()[0].approx_eq(&CMat::identity(2), 1e-9));
        // Invalid ranking: non-decreasing prefix.
        let mut bad = HashMap::new();
        bad.insert(
            0,
            RankingCertificate {
                prefix: vec![ket("1").projector(), CMat::identity(2)],
                tail_factor: 0.5,
            },
        );
        let err2 = precondition(&s, &post, &lib, &reg, opts, &bad).unwrap_err();
        assert!(matches!(err2, VerifError::InvalidRanking { .. }));
        // Invalid ranking: tail factor ≥ 1.
        let mut bad2 = HashMap::new();
        bad2.insert(
            0,
            RankingCertificate {
                prefix: vec![CMat::identity(2), ket("1").projector()],
                tail_factor: 1.0,
            },
        );
        let err3 = precondition(&s, &post, &lib, &reg, opts, &bad2).unwrap_err();
        assert!(matches!(err3, VerifError::InvalidRanking { .. }));
    }

    #[test]
    fn nonterminating_loop_rejects_all_rankings() {
        // while M01[q] (continue on 1) do skip: from |1⟩ never terminates,
        // so no valid ranking certificate can exist: P¹∘E†(R_i) = P1 R_i P1
        // must shrink below γR_k, but condition (1) forces R_0 ⊒ Φ ∋ P1
        // mass... concretely any candidate fails.
        let (lib, reg) = setup(&["q"]);
        let src = "{ inv : P1[q] }; while M01[q] do skip end";
        let s = parse_stmt(src).unwrap();
        let post = Assertion::zero(2);
        let opts = VcOptions {
            mode: Mode::Total,
            ..VcOptions::default()
        };
        let mut rankings = HashMap::new();
        rankings.insert(
            0,
            RankingCertificate {
                prefix: vec![CMat::identity(2)],
                tail_factor: 0.9,
            },
        );
        let err = precondition(&s, &post, &lib, &reg, opts, &rankings).unwrap_err();
        assert!(matches!(err, VerifError::InvalidRanking { .. }));
    }

    #[test]
    fn cut_assertions_are_checked() {
        let (lib, reg) = setup(&["q"]);
        // Valid cut: {Pp} before H with post P0 (wlp = |+⟩⟨+| = Pp).
        let ok = parse_stmt("{ Pp[q] }; [q] *= H").unwrap();
        let post = Assertion::from_expr(
            &nqpv_lang::AssertionExpr::singleton(OpApp::new("P0", &["q"])),
            &lib,
            &reg,
        )
        .unwrap();
        assert!(precondition(&ok, &post, &lib, &reg, VcOptions::default(), &no_rankings()).is_ok());
        // Invalid cut: {P1} before H with post P0.
        let bad = parse_stmt("{ P1[q] }; [q] *= H").unwrap();
        let err = precondition(
            &bad,
            &post,
            &lib,
            &reg,
            VcOptions::default(),
            &no_rankings(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifError::CutFailed { .. }));
    }

    #[test]
    fn expired_deadline_stops_the_backward_pass_with_a_span() {
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("[q] *= H; [q] *= H").unwrap();
        let post = Assertion::identity(2);
        let opts = VcOptions::default().with_deadline(Deadline::after(std::time::Duration::ZERO));
        let err = precondition(&s, &post, &lib, &reg, opts, &no_rankings()).unwrap_err();
        assert!(err.is_timeout(), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("deadline exceeded"), "{msg}");
        // A job's wall-clock budget must not partition the memo caches.
        assert_eq!(
            context_key(&reg, opts),
            context_key(&reg, VcOptions::default())
        );
    }

    #[test]
    fn annotation_structure_records_intermediate_conditions() {
        let (lib, reg) = setup(&["q"]);
        let s = parse_stmt("[q] *= H; [q] *= H").unwrap();
        let post = Assertion::from_expr(
            &nqpv_lang::AssertionExpr::singleton(OpApp::new("P0", &["q"])),
            &lib,
            &reg,
        )
        .unwrap();
        let ann = backward(&s, &post, &lib, &reg, VcOptions::default(), &no_rankings()).unwrap();
        // H;H = I so the overall pre is P0 again.
        assert!(ann.pre.ops()[0].approx_eq(&ket("0").projector(), 1e-9));
        match &ann.node {
            AnnotatedNode::Seq(items) => {
                assert_eq!(items.len(), 2);
                // Before the second H the condition is |+⟩⟨+|.
                assert!(items[1].pre.ops()[0].approx_eq(&ket("+").projector(), 1e-9));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }
}
