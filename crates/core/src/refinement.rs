//! Program refinement — the paper's motivating application (Sec. 1:
//! nondeterminism "naturally supports the technique of stepwise
//! refinement") and its declared future work (Sec. 7: "how to make use of
//! the nondeterministic choice construct and the verification technique
//! proposed in this paper for quantum program refinement").
//!
//! Under the lifted semantics, an implementation `Impl` refines a
//! specification `Spec` (written `Spec ⊑ Impl`) when every behaviour of
//! `Impl` is a behaviour of `Spec`: `[[Impl]] ⊆ [[Spec]]`. Refinement
//! preserves every demonic correctness formula: if `⊨ {Θ} Spec {Ψ}` then
//! `⊨ {Θ} Impl {Ψ}`, because the infimum on the right ranges over fewer
//! branches. Equivalently, in wp form: `wp.Spec.Ψ ⊑_inf wp.Impl.Ψ` for
//! every postcondition `Ψ`.
//!
//! This module decides the denotational inclusion exactly for loop-free
//! programs and cross-checks the wp characterisation on sampled
//! postconditions.

use crate::assertion::Assertion;
use crate::error::VerifError;
use crate::ranking::RankingCertificate;
use crate::transformer::{precondition, VcOptions};
use nqpv_lang::Stmt;
use nqpv_linalg::{cr, eigh, CMat};
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_semantics::denote;
use nqpv_solver::Verdict;
use std::collections::HashMap;
use std::collections::HashSet;

/// The result of a refinement check.
#[derive(Debug, Clone)]
pub enum RefinementVerdict {
    /// `[[Impl]] ⊆ [[Spec]]`: every implementation behaviour is allowed.
    Refines,
    /// The implementation has a branch (by index into `[[Impl]]`) that is
    /// not a specification behaviour.
    ExtraBehaviour {
        /// Index of the offending branch in the implementation's
        /// denotation.
        branch: usize,
    },
}

impl RefinementVerdict {
    /// `true` when the refinement holds.
    pub fn refines(&self) -> bool {
        matches!(self, RefinementVerdict::Refines)
    }
}

/// Decides `Spec ⊑ Impl` denotationally for loop-free programs:
/// `[[Impl]] ⊆ [[Spec]]` compared as linear maps.
///
/// # Errors
///
/// Propagates semantic-enumeration failures (including
/// `LoopRequiresBound` for loops — refinement of loops goes through the
/// wp characterisation instead).
pub fn refines_denotationally(
    spec: &Stmt,
    implementation: &Stmt,
    lib: &OperatorLibrary,
    reg: &Register,
) -> Result<RefinementVerdict, VerifError> {
    let spec_set = denote(spec, lib, reg).map_err(VerifError::Semantics)?;
    let impl_set = denote(implementation, lib, reg).map_err(VerifError::Semantics)?;
    let spec_fps: HashSet<u64> = spec_set.iter().map(|e| e.map_fingerprint(1e7)).collect();
    for (i, e) in impl_set.iter().enumerate() {
        if !spec_fps.contains(&e.map_fingerprint(1e7)) {
            // Fingerprint miss could be quantisation noise: confirm by
            // direct comparison before reporting.
            let genuinely_new = spec_set.iter().all(|s| !s.approx_eq_map(e, 1e-7));
            if genuinely_new {
                return Ok(RefinementVerdict::ExtraBehaviour { branch: i });
            }
        }
    }
    Ok(RefinementVerdict::Refines)
}

/// Cross-checks the wp characterisation of refinement on `trials` sampled
/// postconditions: `wp.Spec.Ψ ⊑_inf wp.Impl.Ψ` must hold for each. Returns
/// the first failing sample index, or `None` if all pass.
///
/// This is a *sound refutation* procedure (a failure disproves refinement)
/// and a probabilistic confirmation; the denotational check is the exact
/// one for loop-free programs.
///
/// # Errors
///
/// Propagates transformer failures (loops in either program require
/// invariants to be present in the usual way).
pub fn refutes_by_wp(
    spec: &Stmt,
    implementation: &Stmt,
    lib: &OperatorLibrary,
    reg: &Register,
    trials: usize,
    seed: u64,
    opts: VcOptions,
) -> Result<Option<usize>, VerifError> {
    let rankings: HashMap<usize, RankingCertificate> = HashMap::new();
    let dim = reg.dim();
    for t in 0..trials {
        let post = random_post(dim, seed.wrapping_add(t as u64));
        let wp_spec = precondition(spec, &post, lib, reg, opts, &rankings)?;
        let wp_impl = precondition(implementation, &post, lib, reg, opts, &rankings)?;
        match wp_spec.le_inf(&wp_impl, opts.lowner)? {
            Verdict::Holds => continue,
            _ => return Ok(Some(t)),
        }
    }
    Ok(None)
}

/// Deterministic random postcondition set (1–2 predicates) for wp
/// sampling.
fn random_post(dim: usize, seed: u64) -> Assertion {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    let k = 1 + (seed as usize % 2);
    let mut ops = Vec::with_capacity(k);
    for _ in 0..k {
        let g = CMat::from_fn(dim, dim, |_, _| nqpv_linalg::c(next(), next()));
        let h = g.add_mat(&g.adjoint()).scale_re(0.5);
        let e = eigh(&h).expect("hermitian decomposes");
        let clamped: Vec<_> = e
            .values
            .iter()
            .map(|&x| cr(1.0 / (1.0 + (-2.0 * x).exp())))
            .collect();
        let v = &e.vectors;
        ops.push(v.mul(&CMat::diag(&clamped)).mul(&v.adjoint()).hermitize());
    }
    Assertion::from_ops(dim, ops).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nqpv_lang::parse_stmt;

    fn setup(names: &[&str]) -> (OperatorLibrary, Register) {
        (
            OperatorLibrary::with_builtins(),
            Register::new(names).unwrap(),
        )
    }

    #[test]
    fn narrowing_choices_refines() {
        // Spec: skip □ X □ Z. Impl commits to X.
        let (lib, reg) = setup(&["q"]);
        let spec = parse_stmt("( skip # [q] *= X # [q] *= Z )").unwrap();
        let imp = parse_stmt("[q] *= X").unwrap();
        assert!(refines_denotationally(&spec, &imp, &lib, &reg)
            .unwrap()
            .refines());
        assert_eq!(
            refutes_by_wp(&spec, &imp, &lib, &reg, 12, 5, VcOptions::default()).unwrap(),
            None
        );
    }

    #[test]
    fn partial_narrowing_refines() {
        let (lib, reg) = setup(&["q"]);
        let spec = parse_stmt("( skip # [q] *= X # [q] *= Z )").unwrap();
        let imp = parse_stmt("( skip # [q] *= Z )").unwrap();
        assert!(refines_denotationally(&spec, &imp, &lib, &reg)
            .unwrap()
            .refines());
    }

    #[test]
    fn widening_choices_does_not_refine() {
        let (lib, reg) = setup(&["q"]);
        let spec = parse_stmt("( skip # [q] *= X )").unwrap();
        let imp = parse_stmt("( skip # [q] *= X # [q] *= H )").unwrap();
        match refines_denotationally(&spec, &imp, &lib, &reg).unwrap() {
            RefinementVerdict::ExtraBehaviour { .. } => {}
            other => panic!("expected extra behaviour, got {other:?}"),
        }
        // The wp sampler also refutes it.
        let refuted = refutes_by_wp(&spec, &imp, &lib, &reg, 20, 9, VcOptions::default()).unwrap();
        assert!(refuted.is_some());
    }

    #[test]
    fn refinement_is_reflexive_and_transitive_on_samples() {
        let (lib, reg) = setup(&["q"]);
        let a = parse_stmt("( skip # [q] *= X # [q] *= H )").unwrap();
        let b = parse_stmt("( skip # [q] *= H )").unwrap();
        let c = parse_stmt("skip").unwrap();
        assert!(refines_denotationally(&a, &a, &lib, &reg)
            .unwrap()
            .refines());
        assert!(refines_denotationally(&a, &b, &lib, &reg)
            .unwrap()
            .refines());
        assert!(refines_denotationally(&b, &c, &lib, &reg)
            .unwrap()
            .refines());
        assert!(refines_denotationally(&a, &c, &lib, &reg)
            .unwrap()
            .refines());
    }

    #[test]
    fn qec_adversary_commitment_refines_the_spec() {
        // The QEC program with the 4-way nondeterministic error is refined
        // by the variant where the adversary commits to flipping q1.
        let (lib, reg) = setup(&["q", "q1", "q2"]);
        let spec = parse_stmt(
            "[q1 q2] := 0; [q q1] *= CX; [q q2] *= CX; \
             ( skip # [q] *= X # [q1] *= X # [q2] *= X ); \
             [q q2] *= CX; [q q1] *= CX; \
             if M01[q2] then if M01[q1] then [q] *= X end end",
        )
        .unwrap();
        let imp = parse_stmt(
            "[q1 q2] := 0; [q q1] *= CX; [q q2] *= CX; \
             [q1] *= X; \
             [q q2] *= CX; [q q1] *= CX; \
             if M01[q2] then if M01[q1] then [q] *= X end end",
        )
        .unwrap();
        assert!(refines_denotationally(&spec, &imp, &lib, &reg)
            .unwrap()
            .refines());
        // And refinement transports the verified Hoare triple: the
        // committed-adversary program still preserves ψ.
        assert_eq!(
            refutes_by_wp(&spec, &imp, &lib, &reg, 6, 33, VcOptions::default()).unwrap(),
            None
        );
    }

    #[test]
    fn semantically_equal_reorderings_refine_both_ways() {
        let (lib, reg) = setup(&["q1", "q2"]);
        let a = parse_stmt("[q1] *= X; [q2] *= H").unwrap();
        let b = parse_stmt("[q2] *= H; [q1] *= X").unwrap();
        assert!(refines_denotationally(&a, &b, &lib, &reg)
            .unwrap()
            .refines());
        assert!(refines_denotationally(&b, &a, &lib, &reg)
            .unwrap()
            .refines());
    }
}
