//! Property tests (vendored proptest) for the low-rank factored wp
//! pipeline:
//!
//! * **factored-vs-dense wp equivalence** — pushing a random-rank factored
//!   postcondition backward through a random loop-free program yields the
//!   same predicate set (as operators) as pushing its dense encoding, on
//!   programs mixing Unit, Init (rank growth by the `2ᵏ` branch factor,
//!   then recompression back down), If and NDet;
//! * **Gram-vs-dense Löwner agreement** — the `(r₁+r₂)`-dimensional Gram
//!   eigenproblem behind `factored_lowner_le` agrees with the dense
//!   pivoted-Cholesky/eigenvalue route away from the tolerance boundary,
//!   and the set-level `⊑_inf` verdict is representation-independent.

use nqpv_core::{backward, Assertion, Predicate, VcOptions};
use nqpv_lang::parse_stmt;
use nqpv_linalg::{c, eigh, CMat};
use nqpv_quantum::{OperatorLibrary, Register};
use nqpv_solver::{factored_lowner_le, LownerOptions};
use proptest::prelude::*;
use std::collections::HashMap;

fn next_u64(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn next_f64(s: &mut u64) -> f64 {
    (next_u64(s) as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Random tall-skinny factor whose operator `VV†` lies in `0 ⊑ · ⊑ I`
/// (scaled below the completeness bound so it is a genuine predicate).
fn random_predicate_factor(d: usize, r: usize, seed: &mut u64) -> CMat {
    let v = CMat::from_fn(d, r, |_, _| c(next_f64(seed), next_f64(seed)));
    // ‖VV†‖ ≤ tr(V†V); scale so the top eigenvalue stays below 1.
    let trace: f64 = (0..d)
        .map(|i| v.row(i).iter().map(|z| z.norm_sqr()).sum::<f64>())
        .sum();
    v.scale_re(1.0 / (trace.sqrt().max(1e-6) * 1.1))
}

/// A random loop-free statement over the registers `q1 q2 q3`, drawn from
/// a small grammar exercising every factored transform: unitaries (local
/// and two-qubit), initialisations, measurement conditionals and demonic
/// choice.
fn random_program(seed: &mut u64, depth: usize) -> String {
    let qubit = |s: &mut u64| ["q1", "q2", "q3"][(next_u64(s) % 3) as usize];
    let leaf = |s: &mut u64| {
        let q = qubit(s);
        match next_u64(s) % 6 {
            0 => format!("[{q}] *= H"),
            1 => format!("[{q}] *= X"),
            2 => {
                let mut q2 = qubit(s);
                while q2 == q {
                    q2 = qubit(s);
                }
                format!("[{q} {q2}] *= CX")
            }
            3 => format!("[{q}] := 0"),
            4 => {
                let mut q2 = qubit(s);
                while q2 == q {
                    q2 = qubit(s);
                }
                format!("[{q} {q2}] := 0")
            }
            _ => "skip".to_string(),
        }
    };
    if depth == 0 {
        return leaf(seed);
    }
    match next_u64(seed) % 4 {
        0 => format!(
            "{}; {}",
            random_program(seed, depth - 1),
            random_program(seed, depth - 1)
        ),
        1 => format!(
            "if M01[{}] then {} else {} end",
            qubit(seed),
            random_program(seed, depth - 1),
            random_program(seed, depth - 1)
        ),
        2 => format!(
            "( {} # {} )",
            random_program(seed, depth - 1),
            random_program(seed, depth - 1)
        ),
        _ => leaf(seed),
    }
}

/// Mutual inclusion of two predicate sets as dense operators within `tol`
/// (dedup may differ between representations, so sizes are not compared).
fn sets_agree(a: &Assertion, b: &Assertion, tol: f64) -> bool {
    let covers = |x: &Assertion, y: &Assertion| {
        x.ops()
            .iter()
            .all(|p| y.ops().iter().any(|q| p.dense().approx_eq(q.dense(), tol)))
    };
    covers(a, b) && covers(b, a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn factored_and_dense_wp_agree_on_random_programs(
        seed in 1u64..u64::MAX,
        rank in 1usize..=4,
        depth in 0usize..=2,
    ) {
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q1", "q2", "q3"]).unwrap();
        let d = reg.dim();
        let mut s = seed;
        let src = random_program(&mut s, depth);
        let stmt = parse_stmt(&src).expect("generated program parses");
        let v = random_predicate_factor(d, rank, &mut s);
        let dense_op = v.mul(&v.adjoint());

        let post_f = Assertion::from_predicates(d, vec![Predicate::from_factor(v)]).unwrap();
        let post_d = Assertion::from_ops(d, vec![dense_op]).unwrap();

        let rankings = HashMap::new();
        let opts = VcOptions::default();
        let ann_f = backward(&stmt, &post_f, &lib, &reg, opts, &rankings).expect(&src);
        let ann_d = backward(&stmt, &post_d, &lib, &reg, opts, &rankings).expect(&src);

        prop_assert!(
            sets_agree(&ann_f.pre, &ann_d.pre, 1e-7),
            "wp({src}) differs between factored (rank {rank}) and dense pipelines: \
             {} vs {} predicate(s)",
            ann_f.pre.len(),
            ann_d.pre.len()
        );
        // Expectations agree on a sampled state as a semantic cross-check.
        let rho = {
            let g = CMat::from_fn(d, d, |_, _| c(next_f64(&mut s), next_f64(&mut s)));
            let p = g.mul(&g.adjoint());
            let t = p.trace_re();
            p.scale_re(1.0 / t)
        };
        prop_assert!(
            (ann_f.pre.expectation(&rho) - ann_d.pre.expectation(&rho)).abs() < 1e-7,
            "expectation mismatch for {src}"
        );
    }

    #[test]
    fn init_rank_growth_recompresses_and_matches_dense(
        seed in 1u64..u64::MAX,
        rank in 1usize..=3,
        k in 1usize..=2,
    ) {
        // q̄ := 0 multiplies the factor width by 2ᵏ before recompression
        // claws it back; the operators must agree with the dense route and
        // any surviving factor must respect the payoff threshold.
        let lib = OperatorLibrary::with_builtins();
        let reg = Register::new(&["q1", "q2", "q3"]).unwrap();
        let d = reg.dim();
        let mut s = seed;
        let src = if k == 1 { "[q2] := 0" } else { "[q1 q3] := 0" };
        let stmt = parse_stmt(src).unwrap();
        let v = random_predicate_factor(d, rank, &mut s);
        let dense_op = v.mul(&v.adjoint());
        let post_f = Assertion::from_predicates(d, vec![Predicate::from_factor(v)]).unwrap();
        let post_d = Assertion::from_ops(d, vec![dense_op]).unwrap();
        let rankings = HashMap::new();
        let ann_f = backward(&stmt, &post_f, &lib, &reg, VcOptions::default(), &rankings).unwrap();
        let ann_d = backward(&stmt, &post_d, &lib, &reg, VcOptions::default(), &rankings).unwrap();
        prop_assert!(sets_agree(&ann_f.pre, &ann_d.pre, 1e-7), "{src} rank {rank}");
        if let Some(r_out) = ann_f.pre.max_factored_rank() {
            prop_assert!(2 * r_out <= d, "factored wp exceeded the payoff threshold");
            prop_assert!(
                r_out <= rank << k,
                "rank {r_out} exceeds the 2ᵏ·r growth bound"
            );
        }
    }

    #[test]
    fn gram_and_dense_lowner_verdicts_agree(
        seed in 1u64..u64::MAX,
        rm in 1usize..=3,
        rn in 1usize..=3,
    ) {
        let d = 8usize;
        let mut s = seed;
        let vm = random_predicate_factor(d, rm, &mut s);
        let vn = random_predicate_factor(d, rn, &mut s);
        let dm = vm.mul(&vm.adjoint());
        let dn = vn.mul(&vn.adjoint());
        let min = eigh(&dn.sub_mat(&dm)).unwrap().min();
        // Compare only away from the ε boundary, as the dense tests do.
        if min.abs() > 1e-6 {
            let gram_verdict = factored_lowner_le(&vm, &vn, 1e-9);
            prop_assert_eq!(
                gram_verdict,
                min >= -1e-9,
                "Gram verdict disagrees with the spectrum (min eig {})",
                min
            );
            // Set-level ⊑_inf must be representation-independent.
            let a_f = Assertion::from_predicates(d, vec![Predicate::from_factor(vm.clone())]).unwrap();
            let b_f = Assertion::from_predicates(d, vec![Predicate::from_factor(vn.clone())]).unwrap();
            let a_d = Assertion::from_ops(d, vec![dm]).unwrap();
            let b_d = Assertion::from_ops(d, vec![dn]).unwrap();
            let opts = LownerOptions::default();
            prop_assert_eq!(
                a_f.le_inf(&b_f, opts).unwrap().holds(),
                a_d.le_inf(&b_d, opts).unwrap().holds(),
                "le_inf verdict depends on the representation"
            );
        }
    }
}
