//! Integration tests for experiments E9 and E11: the Sec. 4.1 singleton
//! counterexample, total-correctness verification with ranking certificates
//! (Def. 4.3), and failure injection around them.

use nqpv::core::casestudies::repeat_until_success;
use nqpv::core::correctness::{holds_on_state, sample_states, Sense};
use nqpv::core::{Assertion, Mode, RankingCertificate, VcOptions, VerifError};
use nqpv::lang::parse_stmt;
use nqpv::linalg::CMat;
use nqpv::quantum::{ket, OperatorLibrary, Register, SuperOp};
use nqpv::semantics::{denote_bounded, DenoteOptions};
use nqpv::solver::{assertion_le, LownerOptions};

#[test]
fn e9_sec41_formula_does_not_decompose_into_singletons() {
    // {Θ} skip {Ψ} with Θ = {P0, P1}, Ψ = {I/2}: holds as a set formula…
    let p0 = ket("0").projector();
    let p1 = ket("1").projector();
    let half = CMat::identity(2).scale_re(0.5);
    let v = assertion_le(
        &[p0.clone(), p1.clone()],
        std::slice::from_ref(&half),
        LownerOptions::default(),
    )
    .unwrap();
    assert!(v.holds());
    // …but neither {P0} skip {I/2} nor {P1} skip {I/2} holds.
    assert!(
        !assertion_le(&[p0], std::slice::from_ref(&half), LownerOptions::default())
            .unwrap()
            .holds()
    );
    assert!(!assertion_le(&[p1], &[half], LownerOptions::default())
        .unwrap()
        .holds());
}

#[test]
fn e11_rus_total_correctness_verifies() {
    let outcome = repeat_until_success().verify().unwrap();
    assert!(outcome.status.verified());
}

#[test]
fn e11_rus_semantic_crosscheck() {
    // ⊨tot {I} RUS {P0} evaluated on bounded unrollings: at depth d the
    // guaranteed post-expectation is 1 − 2^{-d} → 1; check it approaches
    // tr(ρ) from below and already exceeds 0.99 at depth 10.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let prog = parse_stmt("[q] := 0; [q] *= H; while M01[q] do [q] *= H end").unwrap();
    let post = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
    let sem = denote_bounded(
        &prog,
        &lib,
        &reg,
        DenoteOptions {
            loop_depth: 10,
            max_set: 64,
            dedupe: true,
        },
    )
    .unwrap();
    assert_eq!(sem.len(), 1);
    let rho = ket("1").projector(); // arbitrary: program resets q
    let out = sem[0].apply(&rho);
    let exp = post.expectation(&out);
    assert!(exp > 0.99, "termination mass at depth 10 is {exp}");
    // And with pre scaled to 0.99·I the bounded check passes outright.
    let pre = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(0.99)]).unwrap();
    for s in sample_states(2, 6, 2025) {
        assert!(holds_on_state(Sense::Total, &sem, &s, &pre, &post, 1e-9));
    }
}

#[test]
fn e11_ranking_failure_injection() {
    // Over-tight γ rejected.
    let mut too_fast = repeat_until_success();
    too_fast.rankings.insert(
        0,
        RankingCertificate::geometric(2, ket("1").projector(), 0.3),
    );
    assert!(matches!(
        too_fast.verify(),
        Err(VerifError::InvalidRanking { .. })
    ));

    // Missing certificate rejected in total mode.
    let mut missing = repeat_until_success();
    missing.rankings.clear();
    assert!(matches!(missing.verify(), Err(VerifError::MissingRanking)));

    // Partial mode never needs it.
    let partial = repeat_until_success();
    let outcome = partial
        .verify_with(VcOptions {
            mode: Mode::Partial,
            ..VcOptions::default()
        })
        .unwrap();
    assert!(outcome.status.verified());

    // Non-hermitian prefix rejected.
    let mut bad_prefix = repeat_until_success();
    bad_prefix.rankings.insert(
        0,
        RankingCertificate::new(vec![CMat::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0])], 0.5),
    );
    assert!(matches!(
        bad_prefix.verify(),
        Err(VerifError::InvalidRanking { .. })
    ));
}

#[test]
fn e11_diverging_loop_has_no_certificate() {
    // while M01[q] (continue on 1) do skip end diverges from |1⟩; a
    // correctly-sized certificate attempt must fail condition (3).
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let body = parse_stmt("skip").unwrap();
    let p1 = ket("1").projector();
    let phi = Assertion::identity(2);
    for gamma in [0.1, 0.5, 0.9, 0.99] {
        for prefix in [
            vec![CMat::identity(2)],
            vec![CMat::identity(2), p1.clone()],
            vec![CMat::identity(2), p1.clone(), p1.scale_re(0.9)],
        ] {
            let cert = RankingCertificate::new(prefix, gamma);
            let res = nqpv::core::check_ranking(
                &cert,
                &phi,
                &body,
                &p1,
                &lib,
                &reg,
                LownerOptions::default(),
            );
            assert!(res.is_err(), "γ={gamma}: diverging loop accepted a ranking");
        }
    }
}

#[test]
fn e11_two_loop_program_uses_distinct_certificates() {
    // Sequential RUS loops: loop ids 0 and 1 each need a certificate.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let prog = parse_stmt(
        "{ inv : I[q] }; while M01[q] do [q] *= H end; \
         [q] *= H; \
         { inv : I[q] }; while M01[q] do [q] *= H end",
    )
    .unwrap();
    let post = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
    let mut rankings = std::collections::HashMap::new();
    let cert = RankingCertificate::geometric(2, ket("1").projector(), 0.5);
    rankings.insert(0, cert.clone());
    // Missing the second loop's certificate: rejected.
    let opts = VcOptions {
        mode: Mode::Total,
        ..VcOptions::default()
    };
    let err = nqpv::core::precondition(&prog, &post, &lib, &reg, opts, &rankings).unwrap_err();
    assert!(matches!(err, VerifError::MissingRanking));
    // With both, it verifies.
    rankings.insert(1, cert);
    let pre = nqpv::core::precondition(&prog, &post, &lib, &reg, opts, &rankings).unwrap();
    assert!(pre.ops()[0].approx_eq(&CMat::identity(2), 1e-9));
}

#[test]
fn lemma_4_1_total_implies_partial_on_programs() {
    // Whenever the backward pass verifies totally, the partial-mode pass
    // must verify as well (Lemma 4.1(1)); check on the case studies.
    for study in [
        nqpv::core::casestudies::err_corr(0.6, 0.8),
        nqpv::core::casestudies::deutsch(),
        repeat_until_success(),
    ] {
        let total = study
            .verify_with(VcOptions {
                mode: Mode::Total,
                ..VcOptions::default()
            })
            .unwrap();
        assert!(total.status.verified(), "{}", study.name);
        let partial = study
            .verify_with(VcOptions {
                mode: Mode::Partial,
                ..VcOptions::default()
            })
            .unwrap();
        assert!(partial.status.verified(), "{}", study.name);
    }
}

#[test]
fn duality_identity_for_superops() {
    // tr(E(ρ)·M) = tr(ρ·E†(M)) — the engine identity behind everything.
    let h = SuperOp::from_unitary(&nqpv::quantum::gates::h());
    let rho = ket("0").projector();
    let m = ket("+").projector();
    assert!(nqpv::quantum::duality_gap(&h, &rho, &m) < 1e-12);
}
