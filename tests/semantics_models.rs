//! Integration tests for experiments E7/E8: the Sec. 3.3 semantic-model
//! separations, plus structural laws of the lifted semantics (Lemma 3.2).

use nqpv::lang::parse_stmt;
use nqpv::linalg::TOL;
use nqpv::quantum::{ket, maximally_mixed, OperatorLibrary, Register};
use nqpv::semantics::models::{example_3_3, example_3_4};
use nqpv::semantics::{apply_set, denote, denote_bounded, DenoteOptions};

#[test]
fn e7_pure_state_convex_lift_is_ill_defined() {
    let demo = example_3_3().unwrap();
    // Eq. 4/5 of the paper, verbatim:
    assert_eq!(demo.mixed.len(), 1);
    assert!(demo.mixed[0].approx_eq(&maximally_mixed(1), TOL));
    assert_eq!(demo.via_computational.len(), 3);
    assert_eq!(demo.via_plus_minus.len(), 1);
    // The computational lift contains the three operators the paper lists:
    // [|0⟩], [|1⟩], I/2.
    let expected = [
        ket("0").projector(),
        ket("1").projector(),
        maximally_mixed(1),
    ];
    for want in &expected {
        assert!(
            demo.via_computational
                .iter()
                .any(|got| got.approx_eq(want, 1e-9)),
            "missing output in the computational lift"
        );
    }
}

#[test]
fn e8_relational_composition_is_not_compositional() {
    let demo = example_3_4().unwrap();
    assert!(demo.t_maps_equal, "[[T]] must equal [[T±]] as maps");
    // [[T;S]]ʳ has three outputs {[|0⟩], [|1⟩], I/2}; [[T±;S]]ʳ just {I/2}.
    assert_eq!(demo.relational_t_then_s.len(), 3);
    assert_eq!(demo.relational_tpm_then_s.len(), 1);
    assert!(demo.relational_tpm_then_s[0].approx_eq(&maximally_mixed(1), 1e-9));
    // The lifted model agrees on both: {I/2}.
    assert_eq!(demo.lifted_t_then_s.len(), 1);
    assert!(demo.lifted_t_then_s[0].approx_eq(&demo.lifted_tpm_then_s[0], 1e-9));
}

#[test]
fn lemma_3_2_loop_unrolling_identity() {
    // [[while]] = P⁰ + [[while]]∘[[S]]∘P¹ at matched depths:
    // unrolling to depth n+1 equals {P⁰ + G∘E∘P¹ : G at depth n, E ∈ [[S]]}.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let w = parse_stmt("while M01[q] do ( [q] *= H # [q] *= X ) end").unwrap();
    let body = parse_stmt("( [q] *= H # [q] *= X )").unwrap();
    let depth_n = denote_bounded(
        &w,
        &lib,
        &reg,
        DenoteOptions {
            loop_depth: 3,
            max_set: 4096,
            dedupe: true,
        },
    )
    .unwrap();
    let depth_n1 = denote_bounded(
        &w,
        &lib,
        &reg,
        DenoteOptions {
            loop_depth: 4,
            max_set: 4096,
            dedupe: true,
        },
    )
    .unwrap();
    let body_set = denote(&body, &lib, &reg).unwrap();
    let p0 = nqpv::quantum::SuperOp::from_projector(&ket("0").projector());
    let p1 = nqpv::quantum::SuperOp::from_projector(&ket("1").projector());
    // Build the RHS of Lemma 3.2 from depth-n and compare as a set.
    let mut rhs: Vec<nqpv::quantum::SuperOp> = Vec::new();
    for g in &depth_n {
        for e in &body_set {
            rhs.push(p0.clone().add(&g.compose(&e.compose(&p1))));
        }
    }
    // Set equality via fingerprints.
    let fp = |s: &[nqpv::quantum::SuperOp]| {
        let mut v: Vec<u64> = s.iter().map(|o| o.map_fingerprint(1e7)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    assert_eq!(fp(&depth_n1), fp(&rhs), "Lemma 3.2 fails at depth 3→4");
}

#[test]
fn nondeterminism_is_associative_and_commutative_as_sets() {
    // The paper (Ex. 3.1) assumes □ is left/right-associative; semantically
    // the denotation set is order-insensitive.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let variants = [
        "( ( skip # [q] *= X ) # [q] *= H )",
        "( skip # ( [q] *= X # [q] *= H ) )",
        "( [q] *= H # ( [q] *= X # skip ) )",
    ];
    let mut sets = Vec::new();
    for v in variants {
        let s = parse_stmt(v).unwrap();
        let mut set: Vec<u64> = denote(&s, &lib, &reg)
            .unwrap()
            .iter()
            .map(|o| o.map_fingerprint(1e7))
            .collect();
        set.sort_unstable();
        sets.push(set);
    }
    assert_eq!(sets[0], sets[1]);
    assert_eq!(sets[1], sets[2]);
}

#[test]
fn skip_and_abort_are_units() {
    // skip;S ≡ S ≡ S;skip and abort;S ≡ abort as map sets.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let base = parse_stmt("( [q] *= H # [q] *= X )").unwrap();
    let with_skips = parse_stmt("skip; ( [q] *= H # [q] *= X ); skip").unwrap();
    let rho = ket("0").projector();
    let a = apply_set(&denote(&base, &lib, &reg).unwrap(), &rho);
    let b = apply_set(&denote(&with_skips, &lib, &reg).unwrap(), &rho);
    assert_eq!(a.len(), b.len());
    for x in &a {
        assert!(b.iter().any(|y| y.approx_eq(x, 1e-10)));
    }
    let aborted = parse_stmt("abort; ( [q] *= H # [q] *= X )").unwrap();
    let outs = apply_set(&denote(&aborted, &lib, &reg).unwrap(), &rho);
    assert_eq!(outs.len(), 1);
    assert!(outs[0].is_zero(1e-12));
}
