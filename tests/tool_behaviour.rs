//! Integration tests for experiment E4: the NQPV tool behaviours of paper
//! Sec. 6.1–6.2 — proof-outline generation with `VAR*` predicates, `show`
//! output, `.npy` loading, precondition omission, and the invalid-invariant
//! error message.

use nqpv::core::casestudies::qwalk_invariant;
use nqpv::core::{Session, SessionError};
use nqpv::linalg::write_matrix;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nqpv_it_{tag}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

const QWALK_SOURCE: &str = r#"
def invN := load "invN.npy" end
def pf := proof [q1 q2] :
  { I[q1] };
  [q1 q2] := 0;
  { inv : invN[q1 q2] };
  while MQWalk[q1 q2] do
    ( [q1 q2] *= W1; [q1 q2] *= W2
    # [q1 q2] *= W2; [q1 q2] *= W1 )
  end;
  { Zero[q1] }
end
show pf end
"#;

#[test]
fn e4_full_session_reproduces_sec62_outline() {
    let dir = temp_dir("outline");
    write_matrix(dir.join("invN.npy"), &qwalk_invariant()).unwrap();
    let mut session = Session::new().with_base_dir(&dir);
    session.run_str(QWALK_SOURCE).unwrap();
    let outcome = session.outcome("pf").expect("proof ran");
    assert!(outcome.status.verified());

    let shown = &session.output()[0];
    // The structural landmarks of the paper's output.
    for needle in [
        "proof [q1 q2] :",
        "{ I[q1] }",
        "// the Veri. Con.",
        "[q1 q2] := 0",
        "{ inv : invN[q1 q2] }",
        "while MQWalk[q1 q2] do",
        "{ invN[q1 q2] }",
        "[q1 q2] *= W1",
        "VAR0[q1 q2]",
        "VAR1[q1 q2]",
        "{ Zero[q1] }",
    ] {
        assert!(shown.contains(needle), "outline missing {needle:?}:\n{shown}");
    }
}

#[test]
fn e4_show_var_predicates() {
    let dir = temp_dir("show");
    write_matrix(dir.join("invN.npy"), &qwalk_invariant()).unwrap();
    let mut session = Session::new().with_base_dir(&dir);
    session.run_str(QWALK_SOURCE).unwrap();
    // `show VAR0 end`: the intermediate predicate W2† invN W2.
    let var0 = session.show("VAR0").expect("VAR0 registered");
    assert!(var0.contains("VAR0 ="));
    // The invariant itself can be shown under its source display name.
    let inv = session.show("invN[q1 q2]").unwrap();
    assert!(inv.contains("invN[q1 q2] ="));
    // Built-ins.
    assert!(session.show("W1").unwrap().contains("0.5774"));
    assert!(matches!(
        session.show("NOSUCH"),
        Err(SessionError::UnknownShow(_))
    ));
}

#[test]
fn e4_invalid_invariant_reproduces_the_error_message() {
    let dir = temp_dir("invalid");
    write_matrix(dir.join("invN.npy"), &qwalk_invariant()).unwrap();
    let broken = QWALK_SOURCE.replace("invN[q1 q2]", "P0[q1]");
    let mut session = Session::new().with_base_dir(&dir);
    let err = session.run_str(&broken).unwrap_err();
    let msg = err.to_string();
    // The two lines of the paper's Sec. 6.2 error output.
    assert!(msg.contains("Order relation not satisfied"), "{msg}");
    assert!(msg.contains("not a valid loop invariant"), "{msg}");
}

#[test]
fn e4_omitted_precondition_computes_weakest_precondition() {
    // Sec. 6.1: "NQPV also allows users to omit preconditions and specify
    // only postconditions. In this case, NQPV outputs the weakest
    // precondition it can compute."
    let mut session = Session::new();
    session
        .run_str("def wp := proof [q] : [q] *= H; { P0[q] } end")
        .unwrap();
    let outcome = session.outcome("wp").unwrap();
    assert!(outcome.status.verified());
    assert!(outcome.computed_pre.ops()[0]
        .approx_eq(&nqpv::quantum::ket("+").projector(), 1e-9));
}

#[test]
fn e4_malformed_inputs_fail_cleanly() {
    let dir = temp_dir("malformed");
    // Corrupt npy.
    std::fs::write(dir.join("bad.npy"), b"not numpy at all").unwrap();
    let mut s = Session::new().with_base_dir(&dir);
    assert!(matches!(
        s.run_str("def op := load \"bad.npy\" end"),
        Err(SessionError::Npy(_, _))
    ));
    // Non-operator matrix (not unitary, not a predicate).
    let bad = nqpv::linalg::CMat::from_real(2, 2, &[3.0, 0.0, 0.0, 0.0]);
    write_matrix(dir.join("big.npy"), &bad).unwrap();
    let mut s2 = Session::new().with_base_dir(&dir);
    assert!(matches!(
        s2.run_str("def op := load \"big.npy\" end"),
        Err(SessionError::Library(_))
    ));
    // Unknown qubit in a program.
    let mut s3 = Session::new();
    let err = s3
        .run_str("def p := proof [q] : { I[q] }; [r] *= H; { I[q] } end")
        .unwrap_err();
    assert!(err.to_string().contains("unknown qubit"), "{err}");
    // Measurement used as a unitary.
    let mut s4 = Session::new();
    let err2 = s4
        .run_str("def p := proof [q] : { I[q] }; [q] *= M01; { I[q] } end")
        .unwrap_err();
    assert!(err2.to_string().contains("expected a unitary"), "{err2}");
}

#[test]
fn e4_cli_binary_verifies_the_shipped_examples() {
    // Drive the actual `nqpv` binary on the checked-in example files.
    let root = env!("CARGO_MANIFEST_DIR");
    let bin = std::path::Path::new(root)
        .join("target")
        .join(if cfg!(debug_assertions) { "debug" } else { "release" })
        .join("nqpv");
    if !bin.exists() {
        // Binary not built in this invocation; skip silently.
        return;
    }
    for file in ["qwalk.nqpv", "err_corr.nqpv", "deutsch.nqpv"] {
        let path = format!("{root}/examples/nqpv_files/{file}");
        let out = std::process::Command::new(&bin)
            .args(["verify", &path])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{file}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("verified"), "{file}: {stdout}");
    }
}
