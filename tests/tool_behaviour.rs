//! Integration tests for experiment E4: the NQPV tool behaviours of paper
//! Sec. 6.1–6.2 — proof-outline generation with `VAR*` predicates, `show`
//! output, `.npy` loading, precondition omission, and the invalid-invariant
//! error message.

use nqpv::core::casestudies::qwalk_invariant;
use nqpv::core::{Session, SessionError};
use nqpv::linalg::write_matrix;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nqpv_it_{tag}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

const QWALK_SOURCE: &str = r#"
def invN := load "invN.npy" end
def pf := proof [q1 q2] :
  { I[q1] };
  [q1 q2] := 0;
  { inv : invN[q1 q2] };
  while MQWalk[q1 q2] do
    ( [q1 q2] *= W1; [q1 q2] *= W2
    # [q1 q2] *= W2; [q1 q2] *= W1 )
  end;
  { Zero[q1] }
end
show pf end
"#;

#[test]
fn e4_full_session_reproduces_sec62_outline() {
    let dir = temp_dir("outline");
    write_matrix(dir.join("invN.npy"), &qwalk_invariant()).unwrap();
    let mut session = Session::new().with_base_dir(&dir);
    session.run_str(QWALK_SOURCE).unwrap();
    let outcome = session.outcome("pf").expect("proof ran");
    assert!(outcome.status.verified());

    let shown = &session.output()[0];
    // The structural landmarks of the paper's output.
    for needle in [
        "proof [q1 q2] :",
        "{ I[q1] }",
        "// the Veri. Con.",
        "[q1 q2] := 0",
        "{ inv : invN[q1 q2] }",
        "while MQWalk[q1 q2] do",
        "{ invN[q1 q2] }",
        "[q1 q2] *= W1",
        "VAR0[q1 q2]",
        "VAR1[q1 q2]",
        "{ Zero[q1] }",
    ] {
        assert!(
            shown.contains(needle),
            "outline missing {needle:?}:\n{shown}"
        );
    }
}

#[test]
fn e4_show_var_predicates() {
    let dir = temp_dir("show");
    write_matrix(dir.join("invN.npy"), &qwalk_invariant()).unwrap();
    let mut session = Session::new().with_base_dir(&dir);
    session.run_str(QWALK_SOURCE).unwrap();
    // `show VAR0 end`: the intermediate predicate W2† invN W2.
    let var0 = session.show("VAR0").expect("VAR0 registered");
    assert!(var0.contains("VAR0 ="));
    // The invariant itself can be shown under its source display name.
    let inv = session.show("invN[q1 q2]").unwrap();
    assert!(inv.contains("invN[q1 q2] ="));
    // Built-ins.
    assert!(session.show("W1").unwrap().contains("0.5774"));
    assert!(matches!(
        session.show("NOSUCH"),
        Err(SessionError::UnknownShow(_))
    ));
}

#[test]
fn e4_invalid_invariant_reproduces_the_error_message() {
    let dir = temp_dir("invalid");
    write_matrix(dir.join("invN.npy"), &qwalk_invariant()).unwrap();
    let broken = QWALK_SOURCE.replace("invN[q1 q2]", "P0[q1]");
    let mut session = Session::new().with_base_dir(&dir);
    let err = session.run_str(&broken).unwrap_err();
    let msg = err.to_string();
    // The two lines of the paper's Sec. 6.2 error output.
    assert!(msg.contains("Order relation not satisfied"), "{msg}");
    assert!(msg.contains("not a valid loop invariant"), "{msg}");
}

#[test]
fn e4_omitted_precondition_computes_weakest_precondition() {
    // Sec. 6.1: "NQPV also allows users to omit preconditions and specify
    // only postconditions. In this case, NQPV outputs the weakest
    // precondition it can compute."
    let mut session = Session::new();
    session
        .run_str("def wp := proof [q] : [q] *= H; { P0[q] } end")
        .unwrap();
    let outcome = session.outcome("wp").unwrap();
    assert!(outcome.status.verified());
    assert!(outcome.computed_pre.ops()[0].approx_eq(&nqpv::quantum::ket("+").projector(), 1e-9));
}

#[test]
fn e4_malformed_inputs_fail_cleanly() {
    let dir = temp_dir("malformed");
    // Corrupt npy.
    std::fs::write(dir.join("bad.npy"), b"not numpy at all").unwrap();
    let mut s = Session::new().with_base_dir(&dir);
    assert!(matches!(
        s.run_str("def op := load \"bad.npy\" end"),
        Err(SessionError::Npy(_, _))
    ));
    // Non-operator matrix (not unitary, not a predicate).
    let bad = nqpv::linalg::CMat::from_real(2, 2, &[3.0, 0.0, 0.0, 0.0]);
    write_matrix(dir.join("big.npy"), &bad).unwrap();
    let mut s2 = Session::new().with_base_dir(&dir);
    assert!(matches!(
        s2.run_str("def op := load \"big.npy\" end"),
        Err(SessionError::Library(_))
    ));
    // Unknown qubit in a program.
    let mut s3 = Session::new();
    let err = s3
        .run_str("def p := proof [q] : { I[q] }; [r] *= H; { I[q] } end")
        .unwrap_err();
    assert!(err.to_string().contains("unknown qubit"), "{err}");
    // Measurement used as a unitary.
    let mut s4 = Session::new();
    let err2 = s4
        .run_str("def p := proof [q] : { I[q] }; [q] *= M01; { I[q] } end")
        .unwrap_err();
    assert!(err2.to_string().contains("expected a unitary"), "{err2}");
}

/// Path to the built `nqpv` binary, building it via cargo if this test
/// profile hasn't produced it yet.
fn nqpv_bin() -> Option<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| root.join("target"));
    let bin = target.join(profile).join("nqpv");
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = std::process::Command::new(cargo);
        cmd.current_dir(root).args(["build", "-p", "nqpv-cli"]);
        if profile == "release" {
            cmd.arg("--release");
        }
        let _ = cmd.status();
    }
    bin.exists().then_some(bin)
}

fn run_nqpv(args: &[&str]) -> Option<std::process::Output> {
    let bin = nqpv_bin()?;
    Some(
        std::process::Command::new(bin)
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .args(args)
            .output()
            .expect("binary runs"),
    )
}

#[test]
fn e4_cli_binary_verifies_the_shipped_examples() {
    // Drive the actual `nqpv` binary on the checked-in example files.
    for file in ["qwalk.nqpv", "err_corr.nqpv", "deutsch.nqpv"] {
        let path = format!("examples/nqpv_files/{file}");
        let Some(out) = run_nqpv(&["verify", &path]) else {
            return; // Binary unavailable; skip silently.
        };
        assert!(
            out.status.success(),
            "{file}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("verified"), "{file}: {stdout}");
    }
}

#[test]
fn cli_usage_and_exit_codes() {
    // No arguments: usage on stderr, exit 2.
    let Some(out) = run_nqpv(&[]) else { return };
    assert_eq!(out.status.code(), Some(2), "bare nqpv must exit 2");
    assert!(out.stdout.is_empty(), "usage must go to stderr");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
    assert!(err.contains("batch"), "usage must list batch: {err}");

    // Unknown subcommand and wrong arity are usage errors too.
    for bad in [
        vec!["frobnicate"],
        vec!["verify"],
        vec!["show", "examples/nqpv_files/qwalk.nqpv"],
        vec!["batch"],
        vec!["batch", "--jobs", "examples/corpus"],
        vec!["batch", "--jobs", "0", "examples/corpus"],
        vec!["batch", "--cache-cap", "examples/corpus"],
        vec!["batch", "--cache-cap", "0", "examples/corpus"],
    ] {
        let out = run_nqpv(&bad).expect("binary available");
        assert_eq!(out.status.code(), Some(2), "nqpv {bad:?} must exit 2");
    }

    // verify: 0 on success, 1 on a rejected proof, 2 on a missing file.
    let ok = run_nqpv(&["verify", "examples/corpus/grover_step.nqpv"]).unwrap();
    assert_eq!(ok.status.code(), Some(0));
    let rejected = run_nqpv(&["verify", "examples/corpus/rejected.nqpv"]).unwrap();
    assert_eq!(rejected.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&rejected.stdout).contains("REJECTED"));
    let missing = run_nqpv(&["verify", "examples/corpus/nosuch.nqpv"]).unwrap();
    assert_eq!(missing.status.code(), Some(2));

    // check: 0 on a parseable file, 2 on a syntax error.
    let check_ok = run_nqpv(&["check", "examples/corpus/rus.nqpv"]).unwrap();
    assert_eq!(check_ok.status.code(), Some(0));
    let check_bad = run_nqpv(&["check", "examples/corpus/parse_error.nqpv"]).unwrap();
    assert_eq!(check_bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&check_bad.stderr).contains("parse error"));
}

#[test]
fn cli_batch_verifies_the_corpus_in_parallel() {
    // The acceptance scenario: `nqpv batch examples/corpus --jobs 4 --json`
    // reports per-job status + timings + cache counters, and each verdict
    // matches what sequential `nqpv verify` says about the same file.
    let Some(out) = run_nqpv(&["batch", "examples/corpus", "--jobs", "4", "--json"]) else {
        return;
    };
    // Corpus contains one rejected and one parse-error job → exit 1.
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"workers\": 4"), "{json}");
    assert!(json.contains("\"cache\""), "{json}");
    assert!(json.contains("\"ms\""), "{json}");
    // The solver verdict-cache tier is reported alongside the transformer
    // cache counters.
    assert!(json.contains("\"verdict_hits\""), "{json}");
    assert!(json.contains("\"verdict_misses\""), "{json}");
    assert!(json.contains("\"verdict_hit_rate\""), "{json}");

    // Cross-check every job verdict against the single-file CLI path.
    for (file, status) in [
        ("deutsch", "verified"),
        ("err_corr", "verified"),
        ("grover_step", "verified"),
        ("grover_step_twin", "verified"),
        ("rus", "verified"),
        ("rejected", "rejected"),
        ("rejected_ndet", "rejected"),
        ("parse_error", "error"),
    ] {
        let needle = format!("\"name\": \"{file}\", \"path\": ");
        let line = json
            .lines()
            .find(|l| l.contains(&needle))
            .unwrap_or_else(|| panic!("job {file} missing from {json}"));
        assert!(
            line.contains(&format!("\"status\": \"{status}\"")),
            "{file}: {line}"
        );
        let verify = run_nqpv(&["verify", &format!("examples/corpus/{file}.nqpv")]).unwrap();
        let expected_exit = match status {
            "verified" => 0,
            "rejected" => 1,
            _ => 2,
        };
        assert_eq!(
            verify.status.code(),
            Some(expected_exit),
            "{file}: batch and sequential verdicts must agree"
        );
    }

    // Manifest form: only verifying jobs listed → exit 0, human summary.
    // Sequential (--jobs 1) so the twin job deterministically runs after
    // grover_step has populated the cache.
    let manifest = run_nqpv(&["batch", "examples/corpus/manifest.txt", "--jobs", "1"]).unwrap();
    assert_eq!(
        manifest.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&manifest.stderr)
    );
    let summary = String::from_utf8_lossy(&manifest.stdout);
    assert!(summary.contains("5 job(s): 5 verified"), "{summary}");
    // grover_step_twin is program-identical to grover_step, so the shared
    // memo cache must report hits — and its repeated ⊑_inf queries must
    // land in the solver verdict tier.
    assert!(summary.contains("cache:"), "{summary}");
    assert!(summary.contains("verdict cache:"), "{summary}");
    // ": 0 hit(s)" matches an exact zero count without also matching
    // counts that merely end in 0 (e.g. "10 hit(s)").
    assert!(
        !summary.contains(": 0 hit(s)"),
        "twin job must hit both cache tiers: {summary}"
    );

    // Corpus-level failures are usage-style errors: exit 2.
    let nodir = run_nqpv(&["batch", "examples/no_such_dir"]).unwrap();
    assert_eq!(nodir.status.code(), Some(2));
}

#[test]
fn cli_explain_turns_rejections_into_witnesses() {
    // Deterministic rejection: {P1} H {P0}. The counterexample must name
    // the witness, report a replay-confirmed gap, and exit 1.
    let Some(out) = run_nqpv(&["explain", "examples/corpus/rejected.nqpv"]) else {
        return;
    };
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REJECTED"), "{text}");
    assert!(text.contains("witness |v⟩"), "{text}");
    assert!(text.contains("CONFIRMED violation"), "{text}");
    assert!(text.contains("replay gap = 0.707107"), "{text}");

    // Nondeterministic rejection: the demonic scheduler trace names the
    // violating branch of the `□`.
    let ndet = run_nqpv(&["explain", "examples/corpus/rejected_ndet.nqpv"]).unwrap();
    assert_eq!(ndet.status.code(), Some(1));
    let text = String::from_utf8_lossy(&ndet.stdout);
    assert!(text.contains("#0 → right"), "{text}");
    assert!(text.contains("replay gap = 1.000000"), "{text}");

    // JSON form: machine-checkable gap, schedule and witness amplitudes.
    let json_out = run_nqpv(&["explain", "--json", "examples/corpus/rejected_ndet.nqpv"]).unwrap();
    assert_eq!(json_out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&json_out.stdout);
    assert!(json.contains("\"gap\":1"), "{json}");
    assert!(json.contains("\"branch\":\"right\""), "{json}");
    assert!(json.contains("\"amplitudes\":"), "{json}");
    assert!(json.contains("\"confirmed\":true"), "{json}");

    // Verified files yield no counterexample and exit 0; structural
    // errors exit 2; missing target is a usage error.
    let ok = run_nqpv(&["explain", "examples/corpus/grover_step.nqpv"]).unwrap();
    assert_eq!(ok.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&ok.stdout).contains("no counterexample"));
    let broken = run_nqpv(&["explain", "examples/corpus/parse_error.nqpv"]).unwrap();
    assert_eq!(broken.status.code(), Some(2));
    let bare = run_nqpv(&["explain"]).unwrap();
    assert_eq!(bare.status.code(), Some(2));

    // Batch integration: `--explain --json` attaches the witnesses to
    // exactly the rejected jobs.
    let batch = run_nqpv(&[
        "batch",
        "examples/corpus",
        "--jobs",
        "2",
        "--explain",
        "--json",
    ])
    .unwrap();
    assert_eq!(batch.status.code(), Some(1));
    let json = String::from_utf8_lossy(&batch.stdout);
    assert_eq!(
        json.matches("\"counterexamples\": [").count(),
        2,
        "both rejected jobs diagnosed: {json}"
    );
    assert!(
        json.contains("\"schedule\":[{\"index\":0,\"branch\":\"right\"}]"),
        "{json}"
    );
}

#[test]
fn cli_batch_cache_cap_bounds_and_reports_evictions() {
    // A 1-entry-per-tier LRU over the manifest corpus: verdicts are
    // unchanged, eviction counters surface in both report formats.
    let Some(capped) = run_nqpv(&[
        "batch",
        "examples/corpus/manifest.txt",
        "--jobs",
        "1",
        "--cache-cap",
        "1",
        "--json",
    ]) else {
        return;
    };
    assert_eq!(
        capped.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&capped.stderr)
    );
    let json = String::from_utf8_lossy(&capped.stdout);
    assert!(json.contains("\"evictions\":"), "{json}");
    assert!(json.contains("\"verdict_evictions\":"), "{json}");
    // The tier never exceeds the cap.
    assert!(
        json.contains("\"entries\": 1") || json.contains("\"entries\": 0"),
        "{json}"
    );
    // Human summary carries the eviction counts too.
    let human = run_nqpv(&[
        "batch",
        "examples/corpus/manifest.txt",
        "--jobs",
        "1",
        "--cache-cap",
        "1",
    ])
    .unwrap();
    let summary = String::from_utf8_lossy(&human.stdout);
    assert!(summary.contains("eviction(s)"), "{summary}");
}

/// Extracts the integer value of `"key": N` from a JSON report line.
fn json_counter(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle)? + needle.len();
    let digits: String = json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn cli_batch_cache_dir_persists_verdicts_across_runs() {
    // `--cache-dir` layers the on-disk verdict store under the memo
    // cache: run 1 writes records, run 2 (a fresh process — a "restart")
    // answers its verdict queries from disk without solving anything new.
    let dir = temp_dir("cache_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.display().to_string();
    let args = [
        "batch",
        "examples/corpus/manifest.txt",
        "--jobs",
        "2",
        "--cache-dir",
        cache.as_str(),
        "--json",
    ];
    let Some(cold) = run_nqpv(&args) else { return };
    assert_eq!(
        cold.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_json = String::from_utf8_lossy(&cold.stdout);
    assert!(
        json_counter(&cold_json, "disk_writes").unwrap_or(0) >= 1,
        "cold run must persist verdicts: {cold_json}"
    );
    assert_eq!(
        json_counter(&cold_json, "disk_hits"),
        Some(0),
        "{cold_json}"
    );

    let warm = run_nqpv(&args).unwrap();
    assert_eq!(warm.status.code(), Some(0));
    let warm_json = String::from_utf8_lossy(&warm.stdout);
    assert!(
        json_counter(&warm_json, "disk_hits").unwrap_or(0) >= 1,
        "warm run must hit the disk store: {warm_json}"
    );
    assert_eq!(
        json_counter(&warm_json, "disk_writes"),
        Some(0),
        "fully warm run solves nothing new: {warm_json}"
    );
    // Verdicts agree run-over-run.
    for file in ["deutsch", "grover_step", "err_corr"] {
        let needle = format!("\"name\": \"{file}\", ");
        let status = |json: &str| {
            json.lines()
                .find(|l| l.contains(&needle))
                .map(|l| l.contains("\"status\": \"verified\""))
        };
        assert_eq!(status(&cold_json), status(&warm_json), "{file}");
    }

    // The JSON exposes the binning decision (satellite: verdict-cache-
    // aware scheduling): the grover twins share a bin, so the corpus
    // collapses into fewer bins than jobs.
    let bins = json_counter(&warm_json, "bins").expect("bins reported");
    assert!(bins >= 1, "{warm_json}");
    assert!(warm_json.contains("\"bin\": \""), "{warm_json}");
    assert!(warm_json.contains("\"worker\": "), "{warm_json}");
}

#[test]
fn cli_serve_and_client_roundtrip() {
    // Drive the real daemon through the real binary: start `nqpv serve`
    // on an ephemeral loopback port, submit the corpus via `nqpv client`,
    // check the streamed verdicts match `nqpv batch`, and shut it down.
    let Some(bin) = nqpv_bin() else { return };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut serve = std::process::Command::new(&bin)
        .current_dir(root)
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    // The daemon announces its bound address on the first stdout line.
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = serve.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("banner");
        line.trim()
            .rsplit(' ')
            .next()
            .expect("listening banner ends with the address")
            .to_string()
    };

    let client = |args: &[&str]| -> std::process::Output {
        let mut all = vec!["client", addr.as_str()];
        all.extend_from_slice(args);
        std::process::Command::new(&bin)
            .current_dir(root)
            .args(&all)
            .output()
            .expect("client runs")
    };

    let ping = client(&["ping"]);
    assert_eq!(ping.status.code(), Some(0), "{ping:?}");
    assert!(String::from_utf8_lossy(&ping.stdout).contains("pong"));

    // Corpus contains a rejected and an error job → exit 1, and the
    // streamed verdicts agree with `nqpv batch`.
    let submit = client(&["submit", "--priority", "3", "examples/corpus"]);
    assert_eq!(submit.status.code(), Some(1), "{submit:?}");
    let stream = String::from_utf8_lossy(&submit.stdout);
    for (file, status) in [
        ("deutsch", "verified"),
        ("err_corr", "verified"),
        ("grover_step", "verified"),
        ("grover_step_twin", "verified"),
        ("rus", "verified"),
        ("rejected", "rejected"),
        ("rejected_ndet", "rejected"),
        ("parse_error", "error"),
    ] {
        let needle = format!("\"name\":\"{file}\",\"status\":\"{status}\"");
        assert!(
            stream.contains(&needle),
            "{file} must stream status {status}: {stream}"
        );
    }
    assert!(stream.contains("\"event\":\"running\""), "{stream}");

    // Manifests submit as corpora (only verifying jobs listed → exit 0).
    let manifest = client(&["submit", "examples/corpus/manifest.txt"]);
    assert_eq!(manifest.status.code(), Some(0), "{manifest:?}");
    let mstream = String::from_utf8_lossy(&manifest.stdout);
    assert_eq!(
        mstream.matches("\"event\":\"verdict\"").count(),
        5,
        "{mstream}"
    );

    let stats = client(&["stats"]);
    let stats_line = String::from_utf8_lossy(&stats.stdout).to_string();
    assert!(stats_line.contains("\"done\":13"), "{stats_line}");

    let down = client(&["shutdown"]);
    assert!(String::from_utf8_lossy(&down.stdout).contains("shutting_down"));
    let status = serve.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exit: {status:?}");
}

/// Extracts the integer value of `"key":N` from a compact NDJSON line.
fn stat_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn cli_serve_survives_injected_faults_with_verdicts_intact() {
    // Chaos smoke: run the daemon under the deterministic fault harness
    // (one worker panic, two dropped disk reads, one dropped disk write,
    // one dropped connection, two solver stalls — all capped so the run
    // is reproducible) and check that every corpus verdict matches the
    // fault-free roundtrip. Faults are enabled only in the serve process;
    // client subprocesses inherit a clean environment.
    let Some(bin) = nqpv_bin() else { return };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cache = temp_dir("chaos_cache");
    let _ = std::fs::remove_dir_all(&cache);
    let cache_str = cache.display().to_string();
    let mut serve = std::process::Command::new(&bin)
        .current_dir(root)
        .env(
            "NQPV_FAULTS",
            "42:worker_panic*1,disk_read*2,disk_write*1,conn_drop*1,solver_delay*2",
        )
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "2",
            "--cache-dir",
            cache_str.as_str(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = serve.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("banner");
        line.trim()
            .rsplit(' ')
            .next()
            .expect("listening banner ends with the address")
            .to_string()
    };
    let client = |args: &[&str]| -> std::process::Output {
        let mut all = vec!["client", addr.as_str()];
        all.extend_from_slice(args);
        std::process::Command::new(&bin)
            .current_dir(root)
            .args(&all)
            .output()
            .expect("client runs")
    };

    // The first submit-shaped request trips conn_drop: the daemon hangs
    // up before queueing anything, and the client's retry/backoff layer
    // must reconnect and resubmit transparently.
    let submit = client(&["submit", "examples/corpus"]);
    assert_eq!(submit.status.code(), Some(1), "{submit:?}");
    let stream = String::from_utf8_lossy(&submit.stdout);
    for (file, status) in [
        ("deutsch", "verified"),
        ("err_corr", "verified"),
        ("grover_step", "verified"),
        ("grover_step_twin", "verified"),
        ("rus", "verified"),
        ("rejected", "rejected"),
        ("rejected_ndet", "rejected"),
        ("parse_error", "error"),
    ] {
        let needle = format!("\"name\":\"{file}\",\"status\":\"{status}\"");
        assert!(
            stream.contains(&needle),
            "{file} must keep status {status} under faults: {stream}"
        );
    }

    // The harness really fired: every capped site is exercised by the
    // corpus run, so the daemon reports exactly 1+2+1+1+2 injections.
    // (`panicked` stays 0: the injected panic is retried once and the
    // retry verifies, so no job *ends* in a panic verdict.)
    let stats = client(&["stats"]);
    let stats_line = String::from_utf8_lossy(&stats.stdout).to_string();
    assert_eq!(
        stat_field(&stats_line, "faults_injected"),
        Some(7),
        "all capped faults must have fired: {stats_line}"
    );

    let down = client(&["shutdown"]);
    assert!(String::from_utf8_lossy(&down.stdout).contains("shutting_down"));
    let status = serve.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exit: {status:?}");
}

#[test]
fn cli_serve_job_timeout_flags_runaway_jobs_and_daemon_survives() {
    // A deliberately heavy straight-line program (far slower than the
    // deadline) must come back as a TIMEOUT verdict well within 4x the
    // deadline, and the daemon must keep serving afterwards.
    let Some(bin) = nqpv_bin() else { return };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = temp_dir("timeout_heavy");
    let body = "[a] *= H; [b] *= H; ".repeat(4000);
    let heavy = dir.join("heavy.nqpv");
    std::fs::write(
        &heavy,
        format!("def pf := proof [a b c d e f] : {{ I[a] }}; {body}{{ I[a] }} end"),
    )
    .expect("heavy program written");
    let mut serve = std::process::Command::new(&bin)
        .current_dir(root)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "1",
            "--job-timeout",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = serve.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("banner");
        line.trim()
            .rsplit(' ')
            .next()
            .expect("listening banner ends with the address")
            .to_string()
    };
    let client = |args: &[&str]| -> std::process::Output {
        let mut all = vec!["client", addr.as_str()];
        all.extend_from_slice(args);
        std::process::Command::new(&bin)
            .current_dir(root)
            .args(&all)
            .output()
            .expect("client runs")
    };

    let heavy_path = heavy.display().to_string();
    let started = std::time::Instant::now();
    let submit = client(&["submit", heavy_path.as_str()]);
    let elapsed = started.elapsed();
    assert_eq!(submit.status.code(), Some(1), "{submit:?}");
    let stream = String::from_utf8_lossy(&submit.stdout);
    assert!(
        stream.contains("\"status\":\"timeout\""),
        "runaway job must time out: {stream}"
    );
    assert!(
        stream.contains("deadline exceeded"),
        "timeout verdict names the deadline: {stream}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(4),
        "timeout must fire near the deadline, took {elapsed:?}"
    );

    // The worker survived the cancelled job: a quick file still verifies.
    let quick = client(&["submit", "examples/corpus/deutsch.nqpv"]);
    assert_eq!(quick.status.code(), Some(0), "{quick:?}");
    assert!(String::from_utf8_lossy(&quick.stdout).contains("\"status\":\"verified\""));

    let stats = client(&["stats"]);
    let stats_line = String::from_utf8_lossy(&stats.stdout).to_string();
    assert!(
        stat_field(&stats_line, "timed_out").unwrap_or(0) >= 1,
        "{stats_line}"
    );

    let down = client(&["shutdown"]);
    assert!(String::from_utf8_lossy(&down.stdout).contains("shutting_down"));
    let status = serve.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exit: {status:?}");
}

#[test]
fn cli_batch_quarantines_corrupt_cache_records_and_stays_correct() {
    // A corrupt on-disk verdict record must not poison a warm restart:
    // the record is moved to verdicts/quarantine/, the obligation is
    // re-solved, and every corpus verdict matches the cold run.
    let dir = temp_dir("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.display().to_string();
    let args = [
        "batch",
        "examples/corpus/manifest.txt",
        "--jobs",
        "2",
        "--cache-dir",
        cache.as_str(),
        "--json",
    ];
    let Some(cold) = run_nqpv(&args) else { return };
    assert_eq!(cold.status.code(), Some(0), "{cold:?}");
    let cold_json = String::from_utf8_lossy(&cold.stdout);

    // Corrupt one persisted record (skipping the quarantine directory,
    // which only exists on disk after a quarantine event).
    let verdicts = dir.join("verdicts");
    let mut corrupted = 0;
    for shard in std::fs::read_dir(&verdicts).expect("verdict store exists") {
        let shard = shard.expect("shard entry").path();
        if !shard.is_dir() || shard.file_name().is_some_and(|n| n == "quarantine") {
            continue;
        }
        if let Some(record) = std::fs::read_dir(&shard)
            .expect("shard readable")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "nqv"))
        {
            std::fs::write(&record, b"** not a verdict record **").unwrap();
            corrupted += 1;
            break;
        }
    }
    assert_eq!(corrupted, 1, "cold run must have persisted records");

    let warm = run_nqpv(&args).unwrap();
    assert_eq!(warm.status.code(), Some(0), "{warm:?}");
    let warm_json = String::from_utf8_lossy(&warm.stdout);
    assert!(
        json_counter(&warm_json, "disk_quarantined").unwrap_or(0) >= 1,
        "corrupt record must be quarantined: {warm_json}"
    );
    for file in ["deutsch", "grover_step", "err_corr"] {
        let needle = format!("\"name\": \"{file}\", ");
        let status = |json: &str| {
            json.lines()
                .find(|l| l.contains(&needle))
                .map(|l| l.contains("\"status\": \"verified\""))
        };
        assert_eq!(status(&cold_json), status(&warm_json), "{file}");
    }
    let quarantined: Vec<_> = std::fs::read_dir(verdicts.join("quarantine"))
        .expect("quarantine dir exists after the warm run")
        .filter_map(|e| e.ok())
        .collect();
    assert!(
        !quarantined.is_empty(),
        "quarantined file kept for forensics"
    );
}

#[test]
fn cli_profile_out_writes_collapsed_stacks() {
    // `batch --profile-out` folds every job's span events into one
    // collapsed-stack self-time profile (folded-flamegraph text).
    let Some(bin) = nqpv_bin() else { return };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = std::env::temp_dir().join("nqpv_profile_out_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let batch_profile = dir.join("batch.folded");
    let out = std::process::Command::new(&bin)
        .current_dir(root)
        .args([
            "batch",
            "--jobs",
            "2",
            "--profile-out",
            batch_profile.to_str().unwrap(),
            "examples/corpus",
        ])
        .output()
        .expect("batch runs");
    // Corpus has rejected and error jobs → exit 1, but the profile is
    // written regardless of verdicts.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let folded = std::fs::read_to_string(&batch_profile).expect("profile written");
    let mut stacks = std::collections::HashSet::new();
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("'stack count' shape");
        assert!(
            count.parse::<u64>().expect("count is integer") > 0,
            "{line}"
        );
        stacks.insert(stack.to_string());
    }
    assert!(
        stacks.len() >= 3,
        "at least three distinct stacks:\n{folded}"
    );
    assert!(
        folded.lines().any(|l| l.contains(';')),
        "nested frames appear (semicolon-joined):\n{folded}"
    );

    // `explain --profile-out` does the same for a single diagnosed file.
    let explain_profile = dir.join("explain.folded");
    let out = std::process::Command::new(&bin)
        .current_dir(root)
        .args([
            "explain",
            "--profile-out",
            explain_profile.to_str().unwrap(),
            "examples/corpus/rejected.nqpv",
        ])
        .output()
        .expect("explain runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let folded = std::fs::read_to_string(&explain_profile).expect("profile written");
    assert!(!folded.trim().is_empty(), "explain profile non-empty");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_top_once_renders_live_dashboard() {
    // End to end over the real binary: a daemon sampling its metrics
    // ring every second with an SLO armed, fed the corpus, then one
    // `nqpv top --once` frame asserting the acceptance surface: queue
    // state, jobs/s, cache hit ratio, and ring-derived latency
    // quantiles.
    let Some(bin) = nqpv_bin() else { return };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut serve = std::process::Command::new(&bin)
        .current_dir(root)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "2",
            "--sample-secs",
            "1",
            "--slo-ms",
            "30000",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = serve.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("banner");
        line.trim().rsplit(' ').next().expect("address").to_string()
    };
    let submit = std::process::Command::new(&bin)
        .current_dir(root)
        .args(["client", &addr, "submit", "examples/corpus"])
        .output()
        .expect("submit runs");
    assert_eq!(submit.status.code(), Some(1), "{submit:?}");
    // Let the 1s sampler take at least two ring samples over the
    // finished jobs.
    std::thread::sleep(std::time::Duration::from_millis(2300));

    let top = std::process::Command::new(&bin)
        .current_dir(root)
        .args(["top", &addr, "--once"])
        .output()
        .expect("top runs");
    assert_eq!(top.status.code(), Some(0), "{top:?}");
    let frame = String::from_utf8_lossy(&top.stdout);
    for needle in [
        "queued",
        "running",
        "done",
        "jobs/s",
        "verdicts",
        "cache",
        "p50",
        "p95",
        "p99",
        "  job ",
        "slo",
        "budget remaining",
    ] {
        assert!(frame.contains(needle), "missing {needle:?} in:\n{frame}");
    }
    assert!(
        !frame.contains("warming up"),
        "two 1s samples elapsed, quantiles must be live:\n{frame}"
    );

    let down = std::process::Command::new(&bin)
        .current_dir(root)
        .args(["client", &addr, "shutdown"])
        .output()
        .expect("shutdown runs");
    assert!(String::from_utf8_lossy(&down.stdout).contains("shutting_down"));
    let status = serve.wait().expect("daemon exits");
    assert!(status.success(), "{status:?}");
}
