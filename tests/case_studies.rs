//! Integration tests for experiments E1–E3: the paper's Sec. 5 case
//! studies, verified through the full pipeline (parse → bind → backward
//! pass → `⊑_inf`) and cross-checked against the denotational semantics.

use nqpv::core::casestudies::{deutsch, err_corr, grover, grover_parameters, qwalk};
use nqpv::core::correctness::{check_on_states, sample_states, Sense};
use nqpv::core::Assertion;
use nqpv::linalg::{embed, CMat, CVec};
use nqpv::quantum::{ket, OperatorLibrary, Register};
use nqpv::semantics::DenoteOptions;

#[test]
fn e1_err_corr_verifies_for_many_input_states() {
    for (a, b) in [
        (1.0, 0.0),
        (0.0, 1.0),
        (0.6, 0.8),
        (
            std::f64::consts::FRAC_1_SQRT_2,
            -std::f64::consts::FRAC_1_SQRT_2,
        ),
        (0.96, 0.28),
    ] {
        let outcome = err_corr(a, b).verify().expect("verification runs");
        assert!(outcome.status.verified(), "ψ = {a}|0⟩+{b}|1⟩");
    }
}

#[test]
fn e1_err_corr_semantic_crosscheck() {
    // Definition 4.2 evaluated directly on the program semantics.
    let study = err_corr(0.6, 0.8);
    let lib = study.library.clone();
    let reg = Register::new(&["q", "q1", "q2"]).unwrap();
    let psi = CVec::new(vec![nqpv::linalg::cr(0.6), nqpv::linalg::cr(0.8)]);
    let pred = embed(&psi.projector(), &[0], 3);
    let pre = Assertion::from_ops(8, vec![pred.clone()]).unwrap();
    let post = Assertion::from_ops(8, vec![pred]).unwrap();
    let ok = check_on_states(
        Sense::Total,
        &study.term.body,
        &pre,
        &post,
        &lib,
        &reg,
        &sample_states(8, 8, 2024),
        DenoteOptions::default(),
        1e-8,
    )
    .unwrap();
    assert!(ok, "⊨tot {{[ψ]q}} ErrCorr {{[ψ]q}} fails semantically");
}

#[test]
fn e2_deutsch_verifies_and_is_semantically_sound() {
    let study = deutsch();
    let outcome = study.verify().expect("verification runs");
    assert!(outcome.status.verified());

    let reg = Register::new(&["q", "q1", "q2"]).unwrap();
    let dpost = ket("00").projector().add_mat(&ket("11").projector());
    let post = Assertion::from_ops(8, vec![embed(&dpost, &[0, 1], 3)]).unwrap();
    let pre = Assertion::identity(8);
    let ok = check_on_states(
        Sense::Total,
        &study.term.body,
        &pre,
        &post,
        &study.library,
        &reg,
        &sample_states(8, 8, 7),
        DenoteOptions::default(),
        1e-8,
    )
    .unwrap();
    assert!(ok, "⊨tot {{I}} Deutsch {{DPost}} fails semantically");
}

#[test]
fn e3_qwalk_partial_correctness_and_nontermination() {
    let study = qwalk();
    let outcome = study.verify().expect("verification runs");
    assert!(outcome.status.verified());
    // The verification condition is the full identity: {I} QWalk {0}.
    assert!(outcome.computed_pre.ops()[0].approx_eq(&CMat::identity(4), 1e-9));

    // Semantic cross-check: under bounded unrolling every output has
    // (near-)zero trace, so Exp(σ ⊨ {0}) + tr ρ − tr σ ≈ tr ρ ≥ Exp(ρ ⊨ I).
    let reg = Register::new(&["q1", "q2"]).unwrap();
    let pre = Assertion::identity(4);
    let post = Assertion::zero(4);
    let ok = check_on_states(
        Sense::Partial,
        &study.term.body,
        &pre,
        &post,
        &study.library,
        &reg,
        &sample_states(4, 6, 99),
        DenoteOptions {
            loop_depth: 8,
            max_set: 4096,
            dedupe: true,
        },
        1e-8,
    )
    .unwrap();
    assert!(ok);
}

#[test]
fn e3_qwalk_total_claim_would_be_false() {
    // {I} QWalk {0} holds *partially* but must NOT hold totally:
    // total correctness would demand Exp(ρ⊨I) ≤ Exp(σ⊨0) = 0.
    let study = qwalk();
    let lib = study.library.clone();
    let reg = Register::new(&["q1", "q2"]).unwrap();
    let pre = Assertion::identity(4);
    let post = Assertion::zero(4);
    let ok = check_on_states(
        Sense::Total,
        &study.term.body,
        &pre,
        &post,
        &lib,
        &reg,
        &[ket("00").projector()],
        DenoteOptions {
            loop_depth: 4,
            max_set: 4096,
            dedupe: true,
        },
        1e-8,
    )
    .unwrap();
    assert!(!ok, "total correctness of {{I}} QWalk {{0}} must fail");
}

#[test]
fn e6_grover_verifies_and_derives_success_probability() {
    for n in 1..=5 {
        let params = grover_parameters(n);
        let outcome = grover(n).verify().expect("verification runs");
        assert!(outcome.status.verified(), "n = {n}");
        // The computed wp is exactly p·I: read p back off the matrix.
        let wp = &outcome.computed_pre;
        assert_eq!(wp.len(), 1);
        let p_derived = wp.ops()[0][(0, 0)].re;
        assert!(
            (p_derived - params.success_probability).abs() < 1e-9,
            "n = {n}: derived {p_derived}, closed form {}",
            params.success_probability
        );
    }
}

#[test]
fn e6_grover_rejects_overclaimed_success() {
    // Claiming success probability above the true p must fail.
    let n = 3;
    let params = grover_parameters(n);
    let mut study = grover(n);
    let dim = 1usize << n;
    study
        .library
        .insert_predicate(
            "TooMuch",
            CMat::identity(dim).scale_re((params.success_probability + 0.01).min(1.0)),
        )
        .unwrap();
    let body = nqpv::lang::pretty_proof_term(&study.term);
    let replaced = body
        .lines()
        .skip(1) // drop "proof [..] :" header
        .collect::<Vec<_>>()
        .join("\n")
        .replace("PreG", "TooMuch");
    study.term = nqpv::lang::parse_proof_body(&["q0", "q1", "q2"], &replaced).unwrap();
    let outcome = study.verify().expect("verification runs");
    assert!(!outcome.status.verified());
}

#[test]
fn qwalk_always_left_scheduler_matches_w2w1_fixed_point() {
    // The paper's observation: W2·W1|00⟩ = |00⟩ explains non-termination
    // for the always-left scheduler.
    let lib = OperatorLibrary::with_builtins();
    let w1 = lib.unitary("W1").unwrap();
    let w2 = lib.unitary("W2").unwrap();
    let v = w2.mul(w1).mul_vec(&CVec::basis(4, 0));
    assert!((v[0].re - 1.0).abs() < 1e-10);
}
