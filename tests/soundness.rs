//! Integration tests for experiment E10: numerical soundness of the proof
//! systems (Theorems 4.1/4.2) and the wp/wlp–semantics duality (Lemma A.1)
//! on randomly generated loop-free programs.
//!
//! For every generated program `S` and random postcondition `Ψ`:
//!   * `wp.S.Ψ` computed by the backward pass must satisfy
//!     `⊨tot {wp.S.Ψ} S {Ψ}` (Lemma A.3) on sampled states;
//!   * `wlp.S.Ψ` must satisfy `⊨par {wlp.S.Ψ} S {Ψ}`;
//!   * for deterministic programs, `tr(wp.S.M·ρ) = tr(M·[[S]](ρ))` exactly.

use nqpv::core::correctness::{holds_on_state, sample_states, Sense};
use nqpv::core::{precondition, Assertion, Mode, VcOptions};
use nqpv::lang::Stmt;
use nqpv::linalg::{eigh, CMat};
use nqpv::quantum::{OperatorLibrary, Register};
use nqpv::semantics::denote;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const QS: [&str; 2] = ["q1", "q2"];
const UNITARIES: [&str; 6] = ["X", "Y", "Z", "H", "S", "T"];

fn random_stmt(rng: &mut StdRng, depth: usize) -> Stmt {
    let choice = if depth == 0 {
        rng.gen_range(0..5)
    } else {
        rng.gen_range(0..9)
    };
    match choice {
        0 => Stmt::Skip,
        1 => Stmt::Abort,
        2 => Stmt::init(&[QS[rng.gen_range(0..2)]]),
        3 | 4 => {
            if rng.gen_bool(0.3) {
                let (a, b) = if rng.gen_bool(0.5) { (0, 1) } else { (1, 0) };
                Stmt::unitary(&[QS[a], QS[b]], "CX")
            } else {
                Stmt::unitary(
                    &[QS[rng.gen_range(0..2)]],
                    UNITARIES[rng.gen_range(0..UNITARIES.len())],
                )
            }
        }
        5 | 6 => Stmt::seq(vec![
            random_stmt(rng, depth - 1),
            random_stmt(rng, depth - 1),
        ]),
        7 => Stmt::ndet(random_stmt(rng, depth - 1), random_stmt(rng, depth - 1)),
        _ => Stmt::if_meas(
            "M01",
            &[QS[rng.gen_range(0..2)]],
            random_stmt(rng, depth - 1),
            random_stmt(rng, depth - 1),
        ),
    }
}

fn random_predicate(dim: usize, rng: &mut StdRng) -> CMat {
    let g = CMat::from_fn(dim, dim, |_, _| {
        nqpv::linalg::c(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    let h = g.add_mat(&g.adjoint()).scale_re(0.5);
    let e = eigh(&h).unwrap();
    let clamped: Vec<nqpv::linalg::Complex> = e
        .values
        .iter()
        .map(|&x| nqpv::linalg::cr(x.rem_euclid(1.0)))
        .collect();
    let v = &e.vectors;
    v.mul(&CMat::diag(&clamped)).mul(&v.adjoint()).hermitize()
}

fn random_post(dim: usize, rng: &mut StdRng) -> Assertion {
    let k = rng.gen_range(1..=2);
    Assertion::from_ops(dim, (0..k).map(|_| random_predicate(dim, rng)).collect()).unwrap()
}

#[test]
fn e10_wp_and_wlp_are_valid_preconditions_on_random_programs() {
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&QS).unwrap();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let states = sample_states(4, 6, 555);
    let rankings = HashMap::new();
    let mut tested = 0;
    for trial in 0..40 {
        let stmt = random_stmt(&mut rng, 3);
        let post = random_post(4, &mut rng);
        let sem = match denote(&stmt, &lib, &reg) {
            Ok(s) => s,
            Err(_) => continue, // set blow-up: skip
        };
        for (mode, sense) in [(Mode::Total, Sense::Total), (Mode::Partial, Sense::Partial)] {
            let pre = precondition(
                &stmt,
                &post,
                &lib,
                &reg,
                VcOptions {
                    mode,
                    ..VcOptions::default()
                },
                &rankings,
            )
            .expect("loop-free programs always transform");
            for rho in &states {
                assert!(
                    holds_on_state(sense, &sem, rho, &pre, &post, 1e-7),
                    "trial {trial} ({mode:?}): {{wp}} S {{post}} fails on a sample\nS = {}",
                    nqpv::lang::pretty_stmt(&stmt)
                );
            }
        }
        tested += 1;
    }
    assert!(tested >= 30, "too many skipped trials");
}

#[test]
fn e10_wp_duality_exact_for_deterministic_programs() {
    // Lemma A.1(1): wp.S.M = E†(M); numerically
    // tr(wp.S.M · ρ) = tr(M · E(ρ)) for the unique E of a deterministic S.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&QS).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let states = sample_states(4, 5, 777);
    let rankings = HashMap::new();
    let mut tested = 0;
    for _ in 0..60 {
        let stmt = random_stmt(&mut rng, 2);
        if stmt.has_ndet() {
            continue;
        }
        let m = random_predicate(4, &mut rng);
        let post = Assertion::from_ops(4, vec![m.clone()]).unwrap();
        let sem = denote(&stmt, &lib, &reg).unwrap();
        assert_eq!(
            sem.len(),
            1,
            "deterministic program has singleton semantics"
        );
        let pre = precondition(
            &stmt,
            &post,
            &lib,
            &reg,
            VcOptions {
                mode: Mode::Total,
                ..VcOptions::default()
            },
            &rankings,
        )
        .unwrap();
        assert_eq!(pre.len(), 1);
        for rho in &states {
            let lhs = pre.ops()[0].trace_product(rho).re;
            let rhs = m.trace_product(&sem[0].apply(rho)).re;
            assert!(
                (lhs - rhs).abs() < 1e-8,
                "duality gap {} for S = {}",
                (lhs - rhs).abs(),
                nqpv::lang::pretty_stmt(&stmt)
            );
        }
        tested += 1;
    }
    assert!(tested >= 20, "too many nondeterministic samples");
}

#[test]
fn e10_wlp_duality_formula() {
    // Lemma A.1(2): wlp.S.M = {E†(M) + I − E†(I)}: check it explicitly for
    // a lossy deterministic program (conditional abort).
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&QS).unwrap();
    let stmt = nqpv::lang::parse_stmt("if M01[q1] then abort else skip end").unwrap();
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let rankings = HashMap::new();
    for _ in 0..10 {
        let m = random_predicate(4, &mut rng);
        let post = Assertion::from_ops(4, vec![m.clone()]).unwrap();
        let wlp = precondition(
            &stmt,
            &post,
            &lib,
            &reg,
            VcOptions {
                mode: Mode::Partial,
                ..VcOptions::default()
            },
            &rankings,
        )
        .unwrap();
        let sem = denote(&stmt, &lib, &reg).unwrap();
        assert_eq!(sem.len(), 1);
        let e = &sem[0];
        let expected = e
            .apply_heisenberg(&m)
            .add_mat(&CMat::identity(4))
            .sub_mat(&e.apply_heisenberg(&CMat::identity(4)));
        assert_eq!(wlp.len(), 1);
        assert!(
            wlp.ops()[0].approx_eq(&expected, 1e-9),
            "wlp formula mismatch"
        );
    }
}

#[test]
fn e10_checked_proof_trees_are_sound_on_samples() {
    // Random (Unit)/(Seq)/(NDet)/(Imp) derivations replayed through the
    // proof checker, then Definition 4.2 sampled.
    use nqpv::core::proof::{check_proof, ProofNode};
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&QS).unwrap();
    let mut rng = StdRng::seed_from_u64(0xAB);
    let states = sample_states(4, 5, 888);
    for trial in 0..20 {
        // Build {U†V†MVU} u;v {M} as Seq of two Units, optionally wrapped
        // in Imp with a weaker pre.
        let u = UNITARIES[rng.gen_range(0..UNITARIES.len())];
        let v = UNITARIES[rng.gen_range(0..UNITARIES.len())];
        let q = QS[rng.gen_range(0..2)];
        let m = random_predicate(4, &mut rng);
        let post = Assertion::from_ops(4, vec![m]).unwrap();
        // Inner proof: {V† M V} v {M}; outer: {U† (V†MV) U} u {V†MV}.
        let inner_post = post.clone();
        let v_node = ProofNode::Unit {
            qubits: vec![q.to_string()],
            op: v.to_string(),
            post: inner_post,
        };
        let f_v = check_proof(&v_node, Mode::Total, &lib, &reg, Default::default()).unwrap();
        let u_node = ProofNode::Unit {
            qubits: vec![q.to_string()],
            op: u.to_string(),
            post: f_v.pre.clone(),
        };
        let seq = ProofNode::seq(u_node, v_node);
        let f = check_proof(&seq, Mode::Total, &lib, &reg, Default::default()).unwrap();
        // Weaken the precondition by a factor ½ via (Imp).
        let weaker =
            Assertion::from_ops(4, f.pre.ops().iter().map(|x| x.scale_re(0.5)).collect()).unwrap();
        let imp = ProofNode::imp(weaker, seq, f.post.clone());
        let f2 = check_proof(&imp, Mode::Total, &lib, &reg, Default::default()).unwrap();
        let sem = denote(&f2.stmt, &lib, &reg).unwrap();
        for rho in &states {
            assert!(
                holds_on_state(Sense::Total, &sem, rho, &f2.pre, &f2.post, 1e-8),
                "trial {trial}: checked proof is semantically unsound?!"
            );
        }
    }
}
