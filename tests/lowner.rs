//! Integration tests for experiment E5: the `⊑_inf` decision procedure of
//! paper Sec. 6.3, including property-based primal/dual agreement and the
//! algebraic laws of the order (Lemma 4.2).

use nqpv::linalg::{eigh, CMat, CVec};
use nqpv::quantum::SuperOp;
use nqpv::solver::{assertion_le, LownerOptions, Verdict};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_hermitian(dim: usize, rng: &mut StdRng) -> CMat {
    let g = CMat::from_fn(dim, dim, |_, _| {
        nqpv::linalg::c(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    g.add_mat(&g.adjoint()).scale_re(0.25)
}

fn random_predicate(dim: usize, rng: &mut StdRng) -> CMat {
    // Squash a random hermitian into [0, I] via its spectrum.
    let h = random_hermitian(dim, rng);
    let e = eigh(&h).unwrap();
    let clamped: Vec<nqpv::linalg::Complex> = e
        .values
        .iter()
        .map(|&x| nqpv::linalg::cr(1.0 / (1.0 + (-3.0 * x).exp())))
        .collect();
    let v = &e.vectors;
    v.mul(&CMat::diag(&clamped)).mul(&v.adjoint()).hermitize()
}

/// Brute-force `v(N) = max_ρ min_M tr((M−N)ρ)` via dense sampling of pure
/// and mixed states (adequate as a one-sided check at dim 2..4).
fn brute_force_value(theta: &[CMat], n: &CMat, rng: &mut StdRng) -> f64 {
    let dim = n.rows();
    let mut best = f64::NEG_INFINITY;
    let mut probe = |rho: &CMat| {
        let v = theta
            .iter()
            .map(|m| m.sub_mat(n).trace_product(rho).re)
            .fold(f64::INFINITY, f64::min);
        if v > best {
            best = v;
        }
    };
    for _ in 0..4000 {
        let v = CVec::new(
            (0..dim)
                .map(|_| nqpv::linalg::c(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        if v.norm() > 1e-6 {
            probe(&v.normalized().projector());
        }
    }
    probe(&CMat::identity(dim).scale_re(1.0 / dim as f64));
    best
}

#[test]
fn e5_solver_agrees_with_brute_force_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(20230325);
    for dim in [2usize, 4] {
        for _ in 0..15 {
            let k = rng.gen_range(1..=3);
            let theta: Vec<CMat> = (0..k).map(|_| random_predicate(dim, &mut rng)).collect();
            let psi = vec![random_predicate(dim, &mut rng)];
            let verdict = assertion_le(&theta, &psi, LownerOptions::default()).unwrap();
            let bf = brute_force_value(&theta, &psi[0], &mut rng);
            match verdict {
                Verdict::Holds => assert!(
                    bf <= 5e-3,
                    "dim {dim}: solver holds but brute force found {bf}"
                ),
                Verdict::Violated(v) => {
                    assert!(v.margin > 0.0);
                    // The brute-force max can only confirm nonnegativity.
                    assert!(bf >= -5e-3, "margin {} but brute force {bf}", v.margin);
                }
                Verdict::Inconclusive { lower, upper, .. } => {
                    assert!(lower - 5e-3 <= bf && bf <= upper + 5e-3);
                }
            }
        }
    }
}

/// Builds a hermitian `M ⊑ N` by subtracting a random PSD part.
fn dominated_by(n: &CMat, rng: &mut StdRng) -> CMat {
    let dim = n.rows();
    let g = CMat::from_fn(dim, dim, |_, _| {
        nqpv::linalg::c(rng.gen_range(-0.4..0.4), rng.gen_range(-0.4..0.4))
    });
    n.sub_mat(&g.mul(&g.adjoint()))
}

#[test]
fn e5_lemma_4_2_adjoint_monotonicity() {
    // Lemma 4.2(1): Θ ⊑_inf Ψ ⇒ E†(Θ) ⊑_inf E†(Ψ) for super-operators E.
    let mut rng = StdRng::seed_from_u64(42);
    let opts = LownerOptions::default();
    let h = nqpv::quantum::gates::h();
    let m = nqpv::quantum::Measurement::computational();
    let e = SuperOp::from_projector(m.p1()).compose(&SuperOp::from_unitary(&h));
    for trial in 0..25 {
        let n = random_predicate(2, &mut rng);
        // Θ built to dominate-below: each element ⊑ N ⇒ Θ ⊑_inf {N}.
        let theta: Vec<CMat> = (0..2).map(|_| dominated_by(&n, &mut rng)).collect();
        let psi = vec![n];
        assert!(
            matches!(assertion_le(&theta, &psi, opts).unwrap(), Verdict::Holds),
            "trial {trial}: constructed instance must hold"
        );
        let theta_e: Vec<CMat> = theta.iter().map(|x| e.apply_heisenberg(x)).collect();
        let psi_e: Vec<CMat> = psi.iter().map(|x| e.apply_heisenberg(x)).collect();
        let v = assertion_le(&theta_e, &psi_e, opts).unwrap();
        assert!(v.holds(), "trial {trial}: adjoint map must preserve ⊑_inf");
    }
}

#[test]
fn e5_lemma_4_2_union_monotonicity() {
    // Lemma 4.2(2): Θᵢ ⊑_inf Ψᵢ for all i ⇒ ∪Θᵢ ⊑_inf ∪Ψᵢ.
    let mut rng = StdRng::seed_from_u64(77);
    let opts = LownerOptions::default();
    for trial in 0..25 {
        let n1 = random_predicate(2, &mut rng);
        let n2 = random_predicate(2, &mut rng);
        let t1 = vec![dominated_by(&n1, &mut rng), dominated_by(&n1, &mut rng)];
        let t2 = vec![dominated_by(&n2, &mut rng)];
        assert!(assertion_le(&t1, std::slice::from_ref(&n1), opts)
            .unwrap()
            .holds());
        assert!(assertion_le(&t2, std::slice::from_ref(&n2), opts)
            .unwrap()
            .holds());
        let tu: Vec<CMat> = t1.iter().chain(&t2).cloned().collect();
        let pu: Vec<CMat> = vec![n1, n2];
        assert!(
            assertion_le(&tu, &pu, opts).unwrap().holds(),
            "trial {trial}: union monotonicity fails"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_reflexivity(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = rng.gen_range(1..=3);
        let theta: Vec<CMat> = (0..k).map(|_| random_predicate(2, &mut rng)).collect();
        let v = assertion_le(&theta, &theta, LownerOptions::default()).unwrap();
        prop_assert!(v.holds());
    }

    #[test]
    fn prop_enlarging_theta_preserves_holds(seed in 0u64..5000) {
        // inf over a superset is smaller: Θ∪{X} ⊑_inf Ψ whenever Θ ⊑_inf Ψ.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABC);
        let theta = vec![random_predicate(2, &mut rng)];
        let psi = vec![random_predicate(2, &mut rng)];
        let opts = LownerOptions::default();
        if assertion_le(&theta, &psi, opts).unwrap().holds() {
            let mut bigger = theta.clone();
            bigger.push(random_predicate(2, &mut rng));
            prop_assert!(assertion_le(&bigger, &psi, opts).unwrap().holds());
        }
    }

    #[test]
    fn prop_scaling_direction(seed in 0u64..5000, c in 0.1f64..0.9) {
        // c·M ⊑_inf M for predicates M (singletons).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEF);
        let m = random_predicate(2, &mut rng);
        let scaled = m.scale_re(c);
        let v = assertion_le(&[scaled], &[m], LownerOptions::default()).unwrap();
        prop_assert!(v.holds());
    }

    #[test]
    fn prop_violation_witnesses_are_genuine(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x123);
        let theta: Vec<CMat> = (0..2).map(|_| random_predicate(2, &mut rng)).collect();
        let psi = vec![random_predicate(2, &mut rng)];
        if let Verdict::Violated(v) =
            assertion_le(&theta, &psi, LownerOptions::default()).unwrap()
        {
            // Witness is a state and its margin re-computes.
            prop_assert!(nqpv::linalg::is_partial_density(&v.witness, 1e-6));
            let recomputed = theta
                .iter()
                .map(|m| m.sub_mat(&psi[0]).trace_product(&v.witness).re)
                .fold(f64::INFINITY, f64::min);
            prop_assert!((recomputed - v.margin).abs() < 1e-6);
            prop_assert!(recomputed > 0.0);
        }
    }
}
