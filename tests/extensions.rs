//! Integration tests for the extension experiments E13–E18: explicit
//! derivations, refinement, termination analysis, the phase-flip code,
//! angelic nondeterminism, and wlp-fixpoint invariant inference.

use nqpv::core::angelic::{holds_angelic_on_state, le_sup};
use nqpv::core::casestudies::phase_flip_corr;
use nqpv::core::correctness::{holds_on_state, Sense};
use nqpv::core::derivations::{err_corr_derivation, qwalk_derivation};
use nqpv::core::infer::{infer_invariant, InferOptions, InferredInvariant};
use nqpv::core::refinement::{refines_denotationally, refutes_by_wp};
use nqpv::core::{Assertion, Mode, VcOptions};
use nqpv::lang::{parse_proof_body, parse_stmt};
use nqpv::linalg::CMat;
use nqpv::quantum::{ket, OperatorLibrary, Register};
use nqpv::semantics::{
    classify_termination, denote, termination_bounds, DenoteOptions, TerminationClass,
};
use nqpv::solver::LownerOptions;

#[test]
fn e13_derivations_replay_and_match_both_pipelines() {
    let lib = OperatorLibrary::with_builtins();
    let reg3 = Register::new(&["q", "q1", "q2"]).unwrap();
    let (_, f_qec) = err_corr_derivation(0.6, 0.8, &lib, &reg3, LownerOptions::default()).unwrap();
    // The derivation's statement is the ErrCorr program, and its formula
    // is the paper's Eq. 8.
    assert!(f_qec.stmt.has_ndet());
    let psi = nqpv::quantum::superpose(0.6, "0", 0.8, "1");
    let expected = nqpv::linalg::embed(&psi.projector(), &[0], 3);
    assert!(f_qec.pre.ops()[0].approx_eq(&expected, 1e-9));

    let reg2 = Register::new(&["q1", "q2"]).unwrap();
    let (_, f_walk) = qwalk_derivation(&lib, &reg2, LownerOptions::default()).unwrap();
    assert!(f_walk.pre.ops()[0].approx_eq(&CMat::identity(4), 1e-9));
    assert!(f_walk.post.ops()[0].is_zero(1e-12));
}

#[test]
fn e14_refinement_preserves_verified_triples() {
    // If Spec ⊑ Impl and ⊨ {Θ} Spec {Ψ}, then ⊨ {Θ} Impl {Ψ} — check the
    // whole chain on the bit-flip choice.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let spec = parse_stmt("( skip # [q] *= X )").unwrap();
    let imp = parse_stmt("skip").unwrap();
    assert!(refines_denotationally(&spec, &imp, &lib, &reg)
        .unwrap()
        .refines());
    // A triple valid for the spec: {|+⟩⟨+|} S {|+⟩⟨+|} (X fixes |+⟩).
    let plus = Assertion::from_ops(2, vec![ket("+").projector()]).unwrap();
    let spec_sem = denote(&spec, &lib, &reg).unwrap();
    let imp_sem = denote(&imp, &lib, &reg).unwrap();
    for rho in nqpv::core::correctness::sample_states(2, 8, 44) {
        if holds_on_state(Sense::Total, &spec_sem, &rho, &plus, &plus, 1e-9) {
            assert!(holds_on_state(
                Sense::Total,
                &imp_sem,
                &rho,
                &plus,
                &plus,
                1e-9
            ));
        }
    }
    // Non-refinement is refuted by wp sampling.
    let widened = parse_stmt("( skip # [q] *= X # [q] *= H )").unwrap();
    assert!(
        refutes_by_wp(&spec, &widened, &lib, &reg, 20, 3, VcOptions::default())
            .unwrap()
            .is_some()
    );
}

#[test]
fn e15_termination_classification_matrix() {
    let lib = OperatorLibrary::with_builtins();
    let reg1 = Register::new(&["q"]).unwrap();
    let reg2 = Register::new(&["q1", "q2"]).unwrap();
    let opts = DenoteOptions {
        loop_depth: 16,
        max_set: 4096,
        dedupe: true,
    };
    // Diverging.
    let walk = parse_stmt(
        "[q1 q2] := 0; while MQWalk[q1 q2] do \
         ( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 ) end",
    )
    .unwrap();
    let b = termination_bounds(&walk, &ket("00").projector(), &lib, &reg2, opts).unwrap();
    assert_eq!(classify_termination(b, 1e-6), TerminationClass::Diverging);
    // Almost surely terminating.
    let rus = parse_stmt("[q] := 0; [q] *= H; while M01[q] do [q] *= H end").unwrap();
    let b2 = termination_bounds(&rus, &ket("0").projector(), &lib, &reg1, opts).unwrap();
    assert_eq!(
        classify_termination(b2, 1e-3),
        TerminationClass::AlmostSurelyTerminating
    );
    // Scheduler dependent.
    let lazy = parse_stmt("while M01[q] do ( [q] *= H # skip ) end").unwrap();
    let b3 = termination_bounds(&lazy, &ket("1").projector(), &lib, &reg1, opts).unwrap();
    assert_eq!(
        classify_termination(b3, 1e-3),
        TerminationClass::SchedulerDependent
    );
    assert!(b3.branches > 1);
}

#[test]
fn e16_phase_flip_code_pipeline() {
    let outcome = phase_flip_corr(0.6, 0.8).verify().unwrap();
    assert!(outcome.status.verified());
    // Its denotation also has 4 branches and protects the data qubit.
    let study = phase_flip_corr(0.6, 0.8);
    let reg = Register::new(&["q", "q1", "q2"]).unwrap();
    let set = denote(&study.term.body, &study.library, &reg).unwrap();
    assert_eq!(set.len(), 4);
    let psi = nqpv::quantum::superpose(0.6, "0", 0.8, "1");
    let rho = psi.kron(&ket("00")).projector();
    for e in &set {
        let out = e.apply(&rho);
        let reduced = nqpv::linalg::partial_trace(&out, &[1, 2], 3);
        assert!((psi.projector().trace_product(&reduced).re - 1.0).abs() < 1e-9);
    }
}

#[test]
fn e17_angelic_vs_demonic_full_stack() {
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let s = parse_stmt("( skip # [q] *= X )").unwrap();
    let sem = denote(&s, &lib, &reg).unwrap();
    let p0 = Assertion::from_ops(2, vec![ket("0").projector()]).unwrap();
    let p1 = Assertion::from_ops(2, vec![ket("1").projector()]).unwrap();
    let rho = ket("0").projector();
    // Angelic reachability, demonic refusal.
    assert!(holds_angelic_on_state(&sem, &rho, &p0, &p1, 1e-9));
    assert!(!holds_on_state(Sense::Total, &sem, &rho, &p0, &p1, 1e-9));
    // ⊑_sup and ⊑_inf disagree on the Sec. 4.1 sets.
    let both = Assertion::from_ops(2, vec![ket("0").projector(), ket("1").projector()]).unwrap();
    let half = Assertion::from_ops(2, vec![CMat::identity(2).scale_re(0.5)]).unwrap();
    assert!(both
        .le_inf(&half, LownerOptions::default())
        .unwrap()
        .holds());
    assert!(!le_sup(&both, &half, LownerOptions::default())
        .unwrap()
        .holds());
}

#[test]
fn e18_invariant_inference_replaces_annotations() {
    // The un-annotated QWalk verifies with inference enabled…
    let mut study = nqpv::core::casestudies::qwalk();
    study.term = parse_proof_body(
        &["q1", "q2"],
        "{ I[q1] }; [q1 q2] := 0; \
         while MQWalk[q1 q2] do \
           ( [q1 q2] *= W1; [q1 q2] *= W2 # [q1 q2] *= W2; [q1 q2] *= W1 ) \
         end; { Zero[q1] }",
    )
    .unwrap();
    // …but fails without the flag.
    let err = study.verify().unwrap_err();
    assert!(matches!(err, nqpv::core::VerifError::MissingInvariant));
    let outcome = study
        .verify_with(VcOptions {
            mode: Mode::Partial,
            infer_invariants: true,
            ..VcOptions::default()
        })
        .unwrap();
    assert!(outcome.status.verified(), "{:?}", outcome.status);

    // Direct inference on the spin loop returns exactly P1.
    let lib = OperatorLibrary::with_builtins();
    let reg = Register::new(&["q"]).unwrap();
    let body = parse_stmt("skip").unwrap();
    let post = Assertion::zero(2);
    match infer_invariant(
        "M01",
        &["q".to_string()],
        &body,
        &post,
        &lib,
        &reg,
        InferOptions::default(),
    )
    .unwrap()
    {
        InferredInvariant::Found { invariant, .. } => {
            assert!(invariant.ops()[0].approx_eq(&ket("1").projector(), 1e-9));
        }
        other => panic!("expected Found, got {other:?}"),
    }
}
